// ShardSupervisor behaviour against a real fork/exec'd pgmr-shard-worker
// (PGMR_SHARD_WORKER_BIN points at the freshly built binary):
//  * round-trip — verdicts through the worker process are bit-identical
//    to the in-process reference system;
//  * deadline propagation — an already-expired deadline crosses the wire
//    and comes back as DeadlineExceeded, exactly like the thread path;
//  * SIGKILL recovery — the supervisor reaps the corpse (no zombies, pid
//    fully gone), respawns with backoff, and the restarted worker's
//    verdicts are bit-identical to the never-killed reference, because
//    the spec reconstruction is deterministic;
//  * restart-storm cap — a worker that can never start (poisoned spec)
//    exhausts max_restarts and latches the shard failed/unavailable;
//  * backoff schedule — the pure restart_backoff function doubles from
//    initial to cap;
//  * graceful drain — shutdown() answers everything already accepted.
#include "proc/supervisor.h"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "proc/spec.h"
#include "runtime/serving_runtime.h"
#include "tensor/random.h"

namespace pgmr::proc {
namespace {

using std::chrono::milliseconds;

nn::Network tiny_net(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(std::make_unique<nn::Flatten>());
  auto up = std::make_unique<nn::Dense>(16, 8);
  up->init(rng);
  layers.push_back(std::move(up));
  layers.push_back(std::make_unique<nn::ReLU>());
  auto down = std::make_unique<nn::Dense>(8, 3);
  down->init(rng);
  layers.push_back(std::move(down));
  return nn::Network("tiny", std::move(layers));
}

polygraph::PolygraphSystem tiny_system() {
  mr::Ensemble e;
  for (std::uint64_t m = 0; m < 2; ++m) {
    e.add(mr::Member(std::make_unique<prep::Identity>(), tiny_net(m + 1)));
  }
  polygraph::PolygraphSystem sys(std::move(e));
  sys.set_thresholds({0.4F, 2});
  return sys;
}

Tensor random_image(std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(Shape{1, 1, 4, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0.0F, 1.0F);
  return x;
}

/// A spec directory for tiny_system, removed on destruction.
struct SpecDir {
  std::filesystem::path path;
  explicit SpecDir(const std::string& tag) {
    path = std::filesystem::temp_directory_path() /
           ("pgmr-supervisor-test-" + tag + "-" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    polygraph::PolygraphSystem sys = tiny_system();
    runtime::RuntimeOptions options;
    options.max_batch = 4;
    options.max_delay = std::chrono::microseconds(200);
    options.queue_capacity = 64;
    write_system_spec(path.string(), sys, options);
  }
  ~SpecDir() { std::filesystem::remove_all(path); }
};

fleet::ProcessOptions fast_options() {
  fleet::ProcessOptions o;
  o.worker_path = PGMR_SHARD_WORKER_BIN;
  o.startup_timeout = milliseconds(30000);
  o.backoff_initial = milliseconds(20);
  o.backoff_max = milliseconds(200);
  o.healthy_uptime = milliseconds(100);
  o.max_restarts = 8;
  o.drain_timeout = milliseconds(10000);
  return o;
}

bool wait_until(const std::function<bool()>& pred, milliseconds budget) {
  const auto give_up = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < give_up) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(10));
  }
  return pred();
}

TEST(RestartBackoffTest, DoublesFromInitialToCap) {
  const auto initial = milliseconds(200);
  const auto cap = milliseconds(5000);
  EXPECT_EQ(restart_backoff(initial, cap, 0), milliseconds(200));
  EXPECT_EQ(restart_backoff(initial, cap, 1), milliseconds(400));
  EXPECT_EQ(restart_backoff(initial, cap, 2), milliseconds(800));
  EXPECT_EQ(restart_backoff(initial, cap, 3), milliseconds(1600));
  EXPECT_EQ(restart_backoff(initial, cap, 4), milliseconds(3200));
  EXPECT_EQ(restart_backoff(initial, cap, 5), milliseconds(5000));  // capped
  EXPECT_EQ(restart_backoff(initial, cap, 1000), milliseconds(5000));
}

TEST(ShardSupervisorTest, VerdictsMatchTheInProcessReference) {
  SpecDir spec("roundtrip");
  polygraph::PolygraphSystem reference = tiny_system();
  ShardSupervisor sup(spec.path.string(), fast_options(), "shard0");
  ASSERT_TRUE(sup.available()) << "worker failed to start";
  EXPECT_NE(sup.worker_pid(), 0U);
  EXPECT_NE(sup.worker_pid(), static_cast<std::uint64_t>(::getpid()))
      << "the verdicts must come from a different process";

  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    const Tensor image = random_image(seed);
    const polygraph::Verdict got =
        sup.submit(image, std::nullopt).get();
    const polygraph::Verdict want = reference.predict(image);
    EXPECT_EQ(got.label, want.label) << "seed " << seed;
    EXPECT_EQ(got.reliable, want.reliable) << "seed " << seed;
    EXPECT_EQ(got.votes, want.votes) << "seed " << seed;
    EXPECT_EQ(got.activated, want.activated) << "seed " << seed;
    EXPECT_EQ(got.degraded, want.degraded) << "seed " << seed;
  }

  // The worker ships cumulative stats after every verdict.
  ASSERT_TRUE(wait_until(
      [&] { return sup.metrics_snapshot().requests_completed >= 12; },
      milliseconds(5000)));
  EXPECT_EQ(sup.restarts(), 0U);

  const auto pid = static_cast<pid_t>(sup.worker_pid());
  sup.shutdown();
  EXPECT_FALSE(sup.available());
  // Reaped for real: the pid no longer exists and no child is waitable.
  EXPECT_EQ(::kill(pid, 0), -1);
  EXPECT_EQ(errno, ESRCH);
  EXPECT_EQ(::waitpid(pid, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST(ShardSupervisorTest, ExpiredDeadlinePropagatesAsDeadlineExceeded) {
  SpecDir spec("deadline");
  ShardSupervisor sup(spec.path.string(), fast_options(), "shard0");
  ASSERT_TRUE(sup.available());
  const auto long_gone =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  auto future = sup.submit(random_image(1), long_gone);
  EXPECT_THROW(future.get(), runtime::DeadlineExceeded);
}

TEST(ShardSupervisorTest, SigkillRespawnsAndVerdictsStayBitIdentical) {
  SpecDir spec("sigkill");
  polygraph::PolygraphSystem reference = tiny_system();
  ShardSupervisor sup(spec.path.string(), fast_options(), "shard0");
  ASSERT_TRUE(sup.available());

  const Tensor image = random_image(55);
  const polygraph::Verdict before = sup.submit(image, std::nullopt).get();
  const std::uint64_t completed_before =
      sup.metrics_snapshot().requests_completed;
  EXPECT_GE(completed_before, 0U);

  const auto old_pid = static_cast<pid_t>(sup.worker_pid());
  ASSERT_GT(old_pid, 0);
  sup.kill_worker();  // real SIGKILL — the chaos path

  // The supervisor notices, reaps (no zombie), backs off and respawns.
  // available() alone is not enough — right after the SIGKILL the death
  // has not surfaced yet — so wait for the restart counter to tick.
  ASSERT_TRUE(wait_until(
      [&] { return sup.restarts() >= 1 && sup.available(); },
      milliseconds(15000)))
      << "supervisor did not respawn the worker";
  EXPECT_NE(static_cast<pid_t>(sup.worker_pid()), old_pid);
  EXPECT_EQ(::kill(old_pid, 0), -1) << "old worker must be fully gone";
  EXPECT_EQ(errno, ESRCH);

  // Bit-identical restart: the respawned worker reconstructs the system
  // from the same spec, so the same image gets the same verdict.
  const polygraph::Verdict after = sup.submit(image, std::nullopt).get();
  EXPECT_EQ(after.label, before.label);
  EXPECT_EQ(after.reliable, before.reliable);
  EXPECT_EQ(after.votes, before.votes);
  EXPECT_EQ(after.activated, before.activated);
  const polygraph::Verdict want = reference.predict(image);
  EXPECT_EQ(after.label, want.label);

  // Metrics survived the kill: the dead incarnation's counters were folded
  // into the cumulative base.
  ASSERT_TRUE(wait_until(
      [&] {
        return sup.metrics_snapshot().requests_completed >=
               completed_before + 1;
      },
      milliseconds(5000)));
  sup.shutdown();
}

TEST(ShardSupervisorTest, RestartStormCapLatchesTheShardFailed) {
  // A spec directory that exists but holds garbage: every worker
  // incarnation exits immediately, so the supervisor burns through its
  // restart budget and gives the shard up for good.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("pgmr-supervisor-test-storm-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  std::ofstream(dir / "spec.pgmr") << "not a spec";

  fleet::ProcessOptions o = fast_options();
  o.startup_timeout = milliseconds(2000);
  o.max_restarts = 2;
  o.restart_window = milliseconds(60000);
  ShardSupervisor sup(dir.string(), o, "shard0");

  ASSERT_TRUE(wait_until([&] { return sup.failed(); }, milliseconds(20000)))
      << "restart storm did not latch the failed state";
  EXPECT_FALSE(sup.available());
  EXPECT_GE(sup.restarts(), 2U);
  EXPECT_THROW(sup.submit(random_image(1), std::nullopt),
               fleet::ShardUnavailable);
  EXPECT_EQ(sup.try_submit(random_image(1), std::nullopt), std::nullopt);

  // Every corpse was reaped along the way.
  EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
  sup.shutdown();
  std::filesystem::remove_all(dir);
}

TEST(ShardSupervisorTest, GracefulShutdownDrainsAcceptedRequests) {
  SpecDir spec("drain");
  ShardSupervisor sup(spec.path.string(), fast_options(), "shard0");
  ASSERT_TRUE(sup.available());

  std::vector<std::future<polygraph::Verdict>> futures;
  for (std::uint64_t seed = 200; seed < 208; ++seed) {
    futures.push_back(sup.submit(random_image(seed), std::nullopt));
  }
  sup.shutdown();  // must answer all 8 before tearing the worker down
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  EXPECT_THROW(sup.submit(random_image(1), std::nullopt),
               fleet::ShardUnavailable);
}

}  // namespace
}  // namespace pgmr::proc
