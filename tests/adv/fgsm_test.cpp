// FGSM / BIM adversarial attack tests.
#include "adv/fgsm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/pooling.h"
#include "tensor/random.h"

namespace pgmr::adv {
namespace {

nn::Network make_net(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  auto conv = std::make_unique<nn::Conv2D>(1, 4, 3, 1, 1);
  conv->init(rng);
  layers.push_back(std::move(conv));
  layers.push_back(std::make_unique<nn::ReLU>());
  layers.push_back(std::make_unique<nn::Flatten>());
  auto fc = std::make_unique<nn::Dense>(4 * 8 * 8, 3);
  fc->init(rng);
  layers.push_back(std::move(fc));
  return nn::Network("victim", std::move(layers));
}

// Quadrant-brightness toy task (same as network_test's), trained briefly.
void make_task(Tensor& images, std::vector<std::int64_t>& labels,
               std::int64_t n, Rng& rng) {
  images = Tensor(Shape{n, 1, 8, 8});
  labels.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t cls = rng.randint(0, 2);
    labels[static_cast<std::size_t>(i)] = cls;
    for (std::int64_t y = 0; y < 8; ++y) {
      for (std::int64_t x = 0; x < 8; ++x) {
        const bool lit = (cls == 0 && y < 4) || (cls == 1 && y >= 4 && x < 4) ||
                         (cls == 2 && y >= 4 && x >= 4);
        images.at(i, 0, y, x) =
            (lit ? 0.65F : 0.35F) + rng.uniform(-0.05F, 0.05F);
      }
    }
  }
}

nn::Network trained_victim(Tensor& images, std::vector<std::int64_t>& labels) {
  Rng rng(21);
  make_task(images, labels, 192, rng);
  nn::Network net = make_net(22);
  nn::SGD::Config cfg;
  cfg.learning_rate = 0.1F;
  nn::SGD opt(net.params(), net.grads(), cfg);
  for (int epoch = 0; epoch < 12; ++epoch) {
    opt.zero_grad();
    const Tensor logits = net.forward(images, true);
    const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
    net.backward(loss.grad_logits);
    opt.step();
  }
  return net;
}

double accuracy_on(nn::Network& net, const Tensor& images,
                   const std::vector<std::int64_t>& labels) {
  const Tensor logits = net.forward(images, false);
  std::int64_t correct = 0;
  for (std::size_t n = 0; n < labels.size(); ++n) {
    if (logits.argmax_row(static_cast<std::int64_t>(n)) == labels[n]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

TEST(FgsmTest, GradientShapeMatchesInput) {
  Tensor images;
  std::vector<std::int64_t> labels;
  Rng rng(1);
  make_task(images, labels, 8, rng);
  nn::Network net = make_net(2);
  const Tensor grad = input_gradient(net, images, labels);
  EXPECT_EQ(grad.shape(), images.shape());
}

TEST(FgsmTest, PerturbationBoundedAndClamped) {
  Tensor images;
  std::vector<std::int64_t> labels;
  nn::Network net = trained_victim(images, labels);
  const float eps = 0.07F;
  const Tensor adv = fgsm_attack(net, images, labels, eps);
  for (std::int64_t i = 0; i < adv.numel(); ++i) {
    EXPECT_LE(std::fabs(adv[i] - images[i]), eps + 1e-6F);
    EXPECT_GE(adv[i], 0.0F);
    EXPECT_LE(adv[i], 1.0F);
  }
}

TEST(FgsmTest, AttackDegradesAccuracy) {
  Tensor images;
  std::vector<std::int64_t> labels;
  nn::Network net = trained_victim(images, labels);
  const double clean = accuracy_on(net, images, labels);
  ASSERT_GT(clean, 0.9);
  // The class signal is a ~0.3 brightness gap, so an eps-0.2 L-inf ball
  // can cross the decision boundary for most inputs.
  const Tensor adv = fgsm_attack(net, images, labels, 0.2F);
  const double attacked = accuracy_on(net, adv, labels);
  EXPECT_LT(attacked, clean - 0.2);
}

TEST(FgsmTest, ZeroEpsilonIsIdentityUpToClamp) {
  Tensor images;
  std::vector<std::int64_t> labels;
  Rng rng(3);
  make_task(images, labels, 8, rng);
  nn::Network net = make_net(4);
  const Tensor adv = fgsm_attack(net, images, labels, 0.0F);
  EXPECT_TRUE(allclose(adv, images, 0.0F));
  EXPECT_THROW(fgsm_attack(net, images, labels, -0.1F),
               std::invalid_argument);
}

TEST(FgsmTest, BimAtLeastAsStrongAsFgsm) {
  Tensor images;
  std::vector<std::int64_t> labels;
  nn::Network net = trained_victim(images, labels);
  const float eps = 0.12F;
  const Tensor one_shot = fgsm_attack(net, images, labels, eps);
  const Tensor iterated = bim_attack(net, images, labels, eps, 5);
  const double fgsm_acc = accuracy_on(net, one_shot, labels);
  const double bim_acc = accuracy_on(net, iterated, labels);
  EXPECT_LE(bim_acc, fgsm_acc + 0.05);
  // BIM respects the epsilon ball too.
  for (std::int64_t i = 0; i < iterated.numel(); ++i) {
    EXPECT_LE(std::fabs(iterated[i] - images[i]), eps + 1e-5F);
  }
  EXPECT_THROW(bim_attack(net, images, labels, eps, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace pgmr::adv
