// Property-style seeded sweep over the decision engine's degraded-quorum
// edges: for every quorum size 1..N and every Thr_Freq, randomized vote
// sets (including NaN confidences and tied labels) must (a) partition
// cleanly into TP/FP/unreliable, (b) keep degraded_threshold inside its
// documented clamp and monotone in `active`, and (c) decide identically
// when a quorum shrinks and is then restored to full strength — the
// invariant the self-healing member pool leans on after a hot-swap.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "mr/decision.h"
#include "tensor/random.h"

namespace pgmr::mr {
namespace {

constexpr int kMaxMembers = 6;
constexpr int kTrialsPerShape = 200;

/// Random vote set: labels in [-1, 3], confidences in [0, 1] with a few
/// NaNs and exact-threshold values mixed in.
std::vector<Vote> random_votes(Rng& rng, int members) {
  std::vector<Vote> votes(static_cast<std::size_t>(members));
  for (Vote& v : votes) {
    v.label = rng.randint(-1, 3);
    const std::int64_t kind = rng.randint(0, 9);
    if (kind == 0) {
      v.confidence = std::numeric_limits<float>::quiet_NaN();
    } else if (kind == 1) {
      v.confidence = 0.5F;  // exactly Thr_Conf: must count (>= semantics)
    } else {
      v.confidence = rng.uniform(0.0F, 1.0F);
    }
  }
  return votes;
}

/// Ground truth for this sweep: label 0 is "correct".
enum class Outcome { tp, fp, unreliable };

Outcome classify(const Decision& d) {
  if (!d.reliable) return Outcome::unreliable;
  return d.label == 0 ? Outcome::tp : Outcome::fp;
}

TEST(DegradedThresholdProperty, ClampedAndMonotoneInActive) {
  for (int total = 1; total <= kMaxMembers; ++total) {
    for (int freq = 1; freq <= total; ++freq) {
      int prev = 0;
      for (int active = 1; active <= total; ++active) {
        const int thr = degraded_threshold(freq, active, total);
        // Documented clamp: ceil(freq * active / total) in [1, active].
        EXPECT_GE(thr, 1) << freq << "/" << active << "/" << total;
        EXPECT_LE(thr, active) << freq << "/" << active << "/" << total;
        EXPECT_EQ(thr, std::min(
                           active,
                           std::max(1, static_cast<int>(std::ceil(
                                           static_cast<double>(freq) * active /
                                           total)))));
        // Shrinking the quorum never raises the threshold (monotone).
        EXPECT_GE(thr, prev);
        prev = thr;
      }
      // Full quorum degenerates to the configured Thr_Freq.
      EXPECT_EQ(degraded_threshold(freq, total, total), freq);
    }
  }
}

TEST(DegradedDecideProperty, PartitionIsTotalAndFullQuorumMatchesDecide) {
  Rng rng(987654321);
  for (int total = 1; total <= kMaxMembers; ++total) {
    // Thr_Freq must fit the ensemble: past `total` the degraded path's
    // clamp-to-active is deliberately more lenient than plain decide.
    const Thresholds t{0.5F, std::min(3, total)};
    long long tp = 0, fp = 0, unreliable = 0;
    for (int trial = 0; trial < kTrialsPerShape; ++trial) {
      const std::vector<Vote> votes = random_votes(rng, total);
      const Decision full = decide(votes, t, total, total);
      // Every decision falls in exactly one bucket; counting them is total.
      switch (classify(full)) {
        case Outcome::tp: ++tp; break;
        case Outcome::fp: ++fp; break;
        case Outcome::unreliable: ++unreliable; break;
      }
      // active == total is plain decide(), bit for bit.
      const Decision plain = decide(votes, t);
      EXPECT_EQ(full.label, plain.label);
      EXPECT_EQ(full.reliable, plain.reliable);
      EXPECT_EQ(full.votes_for_label, plain.votes_for_label);
      // A reliable decision's vote count satisfies the (re-normalized)
      // frequency threshold; NaN votes can never be behind it.
      if (full.reliable) {
        EXPECT_GE(full.votes_for_label, degraded_threshold(t.freq, total,
                                                           total));
        EXPECT_GE(full.label, 0);
      }
    }
    EXPECT_EQ(tp + fp + unreliable, kTrialsPerShape);
  }
}

TEST(DegradedDecideProperty, ReliabilityNeverAppearsFromNothing) {
  // Under ANY quorum, reliable implies enough >=Thr_Conf votes agree; a
  // vote set with no finite-confidence vote can never be reliable.
  Rng rng(24681357);
  const Thresholds t{0.5F, 2};
  for (int total = 2; total <= kMaxMembers; ++total) {
    for (int active = 1; active <= total; ++active) {
      for (int trial = 0; trial < kTrialsPerShape; ++trial) {
        std::vector<Vote> votes = random_votes(rng, active);
        const Decision d = decide(votes, t, active, total);
        if (d.reliable) {
          EXPECT_GE(d.votes_for_label,
                    degraded_threshold(t.freq, active, total));
          int qualifying = 0;
          for (const Vote& v : votes) {
            if (v.label == d.label && std::isfinite(v.confidence) &&
                v.confidence >= t.conf) {
              ++qualifying;
            }
          }
          EXPECT_EQ(qualifying, d.votes_for_label);
        }
        for (Vote& v : votes) {
          v.confidence = std::numeric_limits<float>::quiet_NaN();
        }
        const Decision nan_only = decide(votes, t, active, total);
        EXPECT_FALSE(nan_only.reliable);
        EXPECT_EQ(nan_only.label, -1);
      }
    }
  }
}

TEST(DegradedDecideProperty, TiedVotesStayUnreliableAtEveryQuorum) {
  const Thresholds t{0.0F, 1};
  for (int total = 2; total <= kMaxMembers; ++total) {
    // A perfect two-way tie: half vote 0, half vote 1 (odd sizes get the
    // extra vote dropped below Thr_Conf via NaN).
    std::vector<Vote> votes;
    for (int m = 0; m < total / 2; ++m) votes.push_back({0, 0.9F});
    for (int m = 0; m < total / 2; ++m) votes.push_back({1, 0.9F});
    if (total % 2 == 1) {
      votes.push_back({2, std::numeric_limits<float>::quiet_NaN()});
    }
    for (int active = static_cast<int>(votes.size()); active <= total;
         ++active) {
      const Decision d = decide(votes, t, active, total);
      EXPECT_FALSE(d.reliable) << "tie must stay unreliable, total=" << total;
    }
  }
}

TEST(DegradedDecideProperty, ShrinkThenRestoreIsStable) {
  // The self-healing pool's contract: decisions made at full quorum after
  // a fence -> replace cycle equal decisions of a system that never lost
  // the member. In engine terms: decide(votes, t, N, N) depends only on
  // the votes, not on the quorum history — and the TP/FP/unreliable tally
  // over a fixed vote stream is identical before and after a shrink.
  Rng rng(1122334455);
  const Thresholds t{0.5F, 3};
  const int total = 4;
  std::vector<std::vector<Vote>> stream;
  for (int trial = 0; trial < kTrialsPerShape; ++trial) {
    stream.push_back(random_votes(rng, total));
  }

  long long before[3] = {0, 0, 0}, after[3] = {0, 0, 0};
  for (const std::vector<Vote>& votes : stream) {
    before[static_cast<int>(classify(decide(votes, t, total, total)))]++;
  }
  // Shrink: serve the same stream on a 3-member quorum (member 3 fenced).
  for (const std::vector<Vote>& votes : stream) {
    std::vector<Vote> degraded(votes.begin(), votes.end() - 1);
    const Decision d = decide(degraded, t, total - 1, total);
    EXPECT_LE(d.votes_for_label, total - 1);
  }
  // Restore: full quorum again — the tally must match exactly.
  for (const std::vector<Vote>& votes : stream) {
    after[static_cast<int>(classify(decide(votes, t, total, total)))]++;
  }
  EXPECT_EQ(before[0], after[0]);
  EXPECT_EQ(before[1], after[1]);
  EXPECT_EQ(before[2], after[2]);
  EXPECT_EQ(after[0] + after[1] + after[2], kTrialsPerShape);
}

}  // namespace
}  // namespace pgmr::mr
