// RADE staged-activation tests (paper Section III-F).
#include "mr/rade.h"

#include <gtest/gtest.h>

namespace pgmr::mr {
namespace {

TEST(PriorityTest, OrdersByCorrectVoteFrequency) {
  // Labels {0, 1, 0}. Member 0: 1 correct; member 1: 3 correct; member 2: 2.
  const MemberVotes votes = {
      {{0, 0.9F}, {0, 0.9F}, {1, 0.9F}},
      {{0, 0.9F}, {1, 0.9F}, {0, 0.9F}},
      {{0, 0.9F}, {1, 0.9F}, {2, 0.9F}},
  };
  const auto order = contribution_priority(votes, {0, 1, 0});
  ASSERT_EQ(order.size(), 3U);
  EXPECT_EQ(order[0], 1U);
  EXPECT_EQ(order[1], 2U);
  EXPECT_EQ(order[2], 0U);
}

TEST(PriorityTest, TiesKeepLowerIndexFirst) {
  const MemberVotes votes = {{{0, 0.9F}}, {{0, 0.9F}}};
  const auto order = contribution_priority(votes, {0});
  EXPECT_EQ(order[0], 0U);
  EXPECT_EQ(order[1], 1U);
}

TEST(StagedDecideTest, EarlyAgreementStopsActivation) {
  // Thr_Freq = 2: the first two members agree -> only 2 activated.
  const std::vector<Vote> ordered = {
      {5, 0.9F}, {5, 0.9F}, {1, 0.9F}, {2, 0.9F}};
  const StagedDecision sd = staged_decide(ordered, {0.0F, 2});
  EXPECT_EQ(sd.activated, 2);
  EXPECT_TRUE(sd.decision.reliable);
  EXPECT_EQ(sd.decision.label, 5);
}

TEST(StagedDecideTest, DisagreementActivatesMore) {
  // First two disagree; third breaks the tie toward label 5.
  const std::vector<Vote> ordered = {
      {5, 0.9F}, {1, 0.9F}, {5, 0.9F}, {2, 0.9F}};
  const StagedDecision sd = staged_decide(ordered, {0.0F, 2});
  EXPECT_EQ(sd.activated, 3);
  EXPECT_TRUE(sd.decision.reliable);
  EXPECT_EQ(sd.decision.label, 5);
}

TEST(StagedDecideTest, EarlyExitWhenThresholdUnreachable) {
  // Thr_Freq = 4 with 5 members: the initial batch of 4 all disagree, so
  // best = 1 and only 1 member remains -> 4 votes are unreachable and the
  // fifth member is never activated.
  const std::vector<Vote> ordered = {
      {1, 0.9F}, {2, 0.9F}, {3, 0.9F}, {4, 0.9F}, {1, 0.9F}};
  const StagedDecision sd = staged_decide(ordered, {0.0F, 4});
  EXPECT_FALSE(sd.decision.reliable);
  EXPECT_EQ(sd.activated, 4);
}

TEST(StagedDecideTest, LowConfidenceVotesDoNotCount) {
  const std::vector<Vote> ordered = {
      {5, 0.2F}, {5, 0.2F}, {5, 0.9F}, {5, 0.9F}};
  const StagedDecision sd = staged_decide(ordered, {0.5F, 2});
  EXPECT_EQ(sd.activated, 4);  // weak votes force full activation
  EXPECT_TRUE(sd.decision.reliable);
}

TEST(StagedDecideTest, MatchesFullEngineVerdict) {
  // Whatever the activation count, the verdict on the activated prefix
  // must equal decide() on that prefix. Exhaustively check small cases.
  const std::vector<Vote> ordered = {
      {1, 0.8F}, {2, 0.6F}, {1, 0.4F}, {3, 0.9F}};
  for (float conf : {0.0F, 0.5F, 0.7F}) {
    for (int freq = 1; freq <= 4; ++freq) {
      const Thresholds t{conf, freq};
      const StagedDecision sd = staged_decide(ordered, t);
      const std::vector<Vote> prefix(ordered.begin(),
                                     ordered.begin() + sd.activated);
      const Decision full = decide(prefix, t);
      EXPECT_EQ(sd.decision.reliable, full.reliable);
      EXPECT_EQ(sd.decision.label, full.label);
    }
  }
}

TEST(StagedDecideTest, RejectsEmptyVotes) {
  EXPECT_THROW(staged_decide({}, {0.0F, 1}), std::invalid_argument);
}

TEST(EvaluateStagedTest, HistogramAndOutcome) {
  // Two members; labels {0, 1}. Sample 0: agree -> 2 activations, TP.
  // Sample 1: disagree -> 2 activations, unreliable at freq 2.
  const MemberVotes votes = {
      {{0, 0.9F}, {1, 0.9F}},
      {{0, 0.9F}, {2, 0.9F}},
  };
  const std::vector<std::size_t> priority = {0, 1};
  const StagedOutcome so =
      evaluate_staged(votes, {0, 1}, priority, {0.0F, 2});
  EXPECT_EQ(so.outcome.tp, 1);
  EXPECT_EQ(so.outcome.unreliable, 1);
  ASSERT_EQ(so.activation_histogram.size(), 2U);
  EXPECT_EQ(so.activation_histogram[1], 2);
  EXPECT_DOUBLE_EQ(so.mean_activated(), 2.0);
}

TEST(EvaluateStagedTest, StagedNeverWorseOnReliabilityThanPrefixLogicAllows) {
  // With Thr_Freq = 1 the first member decides everything: exactly one
  // activation per sample.
  const MemberVotes votes = {
      {{0, 0.9F}, {1, 0.9F}, {0, 0.9F}},
      {{2, 0.9F}, {2, 0.9F}, {2, 0.9F}},
  };
  const StagedOutcome so =
      evaluate_staged(votes, {0, 1, 0}, {0, 1}, {0.0F, 1});
  EXPECT_EQ(so.activation_histogram[0], 3);
  EXPECT_EQ(so.outcome.tp, 3);
  EXPECT_DOUBLE_EQ(so.mean_activated(), 1.0);
}

TEST(EvaluateStagedTest, RejectsBadPriority) {
  const MemberVotes votes = {{{0, 0.9F}}};
  EXPECT_THROW(evaluate_staged(votes, {0}, {0, 1}, {0.0F, 1}),
               std::invalid_argument);
}

TEST(StagedOutcomeTest, MeanOfEmptyHistogramIsZero) {
  StagedOutcome so;
  EXPECT_DOUBLE_EQ(so.mean_activated(), 0.0);
}

}  // namespace
}  // namespace pgmr::mr
