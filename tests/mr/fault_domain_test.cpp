// Member fault domains: try_probabilities / member_outcomes must capture
// exceptions, non-finite softmax and ABFT checksum mismatches per member
// instead of propagating them, and honour the caller's run mask.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "mr/ensemble.h"
#include "nn/dense.h"
#include "nn/pooling.h"

namespace pgmr::mr {
namespace {

/// A Layer-1 preprocessor that always throws, standing in for a crashed
/// member.
class ThrowingPrep final : public prep::Preprocessor {
 public:
  std::string name() const override { return "ORG"; }
  Tensor apply(const Tensor&) const override {
    throw std::runtime_error("injected preprocessor failure");
  }
};

/// Flatten + Dense(2,2) with identity weights: softmax(logits == input).
nn::Network identity_net() {
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(std::make_unique<nn::Flatten>());
  auto fc = std::make_unique<nn::Dense>(2, 2);
  Tensor* w = fc->params()[0];  // [2, 2] row-major
  (*w)[0] = 1.0F;
  (*w)[3] = 1.0F;
  layers.push_back(std::move(fc));
  return nn::Network("identity", std::move(layers));
}

Tensor one_hot_input() {
  Tensor x(Shape{1, 1, 1, 2});
  x[0] = 1.0F;
  return x;
}

TEST(FaultDomainTest, HealthyMemberReportsOkOutcome) {
  Member m(std::make_unique<prep::Identity>(), identity_net());
  MemberOutcome out = m.try_probabilities(one_hot_input());
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.fault, MemberFault::none);
  ASSERT_EQ(out.probabilities.shape().rank(), 2U);
  EXPECT_EQ(out.probabilities.argmax_row(0), 0);
}

TEST(FaultDomainTest, ExceptionIsCapturedNotThrown) {
  Member m(std::make_unique<ThrowingPrep>(), identity_net());
  MemberOutcome out;
  EXPECT_NO_THROW(out = m.try_probabilities(one_hot_input()));
  EXPECT_EQ(out.fault, MemberFault::exception);
  EXPECT_NE(out.message.find("injected"), std::string::npos);
  ASSERT_TRUE(out.error);
  EXPECT_THROW(std::rethrow_exception(out.error), std::runtime_error);
  // The strict path still propagates.
  EXPECT_THROW(m.probabilities(one_hot_input()), std::runtime_error);
}

TEST(FaultDomainTest, NonFiniteSoftmaxIsFlagged) {
  nn::Network net = identity_net();
  (*net.params()[0])[0] = std::numeric_limits<float>::quiet_NaN();
  Member m(std::make_unique<prep::Identity>(), std::move(net));
  const MemberOutcome out = m.try_probabilities(one_hot_input());
  EXPECT_EQ(out.fault, MemberFault::non_finite);
}

TEST(FaultDomainTest, AbftChecksumCatchesSilentWeightCorruption) {
  // The checksum columns are captured at construction; a later weight
  // corruption that still yields a *finite* softmax (a huge weight makes
  // the softmax a confident one-hot, not NaN) must be caught by ABFT.
  Member m(std::make_unique<prep::Identity>(), identity_net());
  ASSERT_TRUE(m.try_probabilities(one_hot_input()).ok());

  Tensor* w = m.net().mutable_network().params()[0];
  (*w)[0] = 1.0e8F;  // silent corruption: output stays finite
  const MemberOutcome out = m.try_probabilities(one_hot_input());
  for (std::int64_t i = 0; i < out.probabilities.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(out.probabilities[i]));
  }
  EXPECT_EQ(out.fault, MemberFault::checksum);
  // refresh_checksum() blesses the current weights again.
  m.net().refresh_checksum();
  EXPECT_TRUE(m.try_probabilities(one_hot_input()).ok());
}

TEST(FaultDomainTest, MemberOutcomesHonourRunMask) {
  Ensemble e;
  e.add(Member(std::make_unique<prep::Identity>(), identity_net()));
  e.add(Member(std::make_unique<ThrowingPrep>(), identity_net()));
  e.add(Member(std::make_unique<prep::Identity>(), identity_net()));

  const std::vector<bool> mask = {true, true, false};
  const auto outcomes =
      e.member_outcomes(one_hot_input(), serial_executor(), &mask);
  ASSERT_EQ(outcomes.size(), 3U);
  EXPECT_EQ(outcomes[0].fault, MemberFault::none);
  EXPECT_EQ(outcomes[1].fault, MemberFault::exception);
  EXPECT_EQ(outcomes[2].fault, MemberFault::skipped);

  const std::vector<bool> bad_mask = {true, false};
  EXPECT_THROW(e.member_outcomes(one_hot_input(), serial_executor(), &bad_mask),
               std::invalid_argument);
}

}  // namespace
}  // namespace pgmr::mr
