// Decision-engine unit tests (paper Section III-E semantics).
#include "mr/decision.h"

#include <gtest/gtest.h>

#include <limits>

namespace pgmr::mr {
namespace {

TEST(DecisionTest, UnanimousVotesAreReliable) {
  const std::vector<Vote> votes = {{3, 0.9F}, {3, 0.8F}, {3, 0.95F}};
  const Decision d = decide(votes, {0.5F, 3});
  EXPECT_EQ(d.label, 3);
  EXPECT_TRUE(d.reliable);
  EXPECT_EQ(d.votes_for_label, 3);
}

TEST(DecisionTest, ConfidenceThresholdDropsWeakVotes) {
  const std::vector<Vote> votes = {{3, 0.9F}, {3, 0.3F}, {5, 0.8F}};
  // With Thr_Conf = 0.5, label 3 keeps one vote, label 5 one: tie ->
  // unreliable.
  const Decision strict = decide(votes, {0.5F, 1});
  EXPECT_FALSE(strict.reliable);
  // With Thr_Conf = 0.2, label 3 has two votes and wins.
  const Decision lax = decide(votes, {0.2F, 2});
  EXPECT_EQ(lax.label, 3);
  EXPECT_TRUE(lax.reliable);
}

TEST(DecisionTest, FrequencyThresholdGatesReliability) {
  const std::vector<Vote> votes = {{1, 0.9F}, {1, 0.9F}, {2, 0.9F}, {4, 0.9F}};
  EXPECT_TRUE(decide(votes, {0.0F, 2}).reliable);
  EXPECT_FALSE(decide(votes, {0.0F, 3}).reliable);
  // The label reported is the mode either way.
  EXPECT_EQ(decide(votes, {0.0F, 3}).label, 1);
}

TEST(DecisionTest, TieForModeIsUnreliable) {
  const std::vector<Vote> votes = {{1, 0.9F}, {1, 0.9F}, {2, 0.9F}, {2, 0.9F}};
  const Decision d = decide(votes, {0.0F, 1});
  EXPECT_FALSE(d.reliable);
  EXPECT_EQ(d.votes_for_label, 2);
}

TEST(DecisionTest, NoAcceptableVotesYieldsNoLabel) {
  const std::vector<Vote> votes = {{1, 0.1F}, {2, 0.2F}};
  const Decision d = decide(votes, {0.9F, 1});
  EXPECT_EQ(d.label, -1);
  EXPECT_FALSE(d.reliable);
  EXPECT_EQ(d.votes_for_label, 0);
}

TEST(DecisionTest, NegativeLabelsAreIgnored) {
  const std::vector<Vote> votes = {{-1, 0.99F}, {2, 0.8F}};
  const Decision d = decide(votes, {0.0F, 1});
  EXPECT_EQ(d.label, 2);
  EXPECT_TRUE(d.reliable);
}

TEST(DecisionTest, ExactTieAtThrFreqIsUnreliable) {
  // Both labels reach exactly Thr_Freq votes: the frequency gate passes but
  // the tie still forces unreliable. The reported label is the lowest of
  // the tied modes (histogram iteration order).
  const std::vector<Vote> votes = {{1, 0.9F}, {1, 0.9F}, {2, 0.9F}, {2, 0.9F}};
  const Decision d = decide(votes, {0.0F, 2});
  EXPECT_FALSE(d.reliable);
  EXPECT_EQ(d.label, 1);
  EXPECT_EQ(d.votes_for_label, 2);
  // Breaking the tie with one extra vote makes the same threshold reliable.
  std::vector<Vote> majority = votes;
  majority.push_back({2, 0.9F});
  const Decision m = decide(majority, {0.0F, 2});
  EXPECT_TRUE(m.reliable);
  EXPECT_EQ(m.label, 2);
  EXPECT_EQ(m.votes_for_label, 3);
}

TEST(DecisionTest, EmptyVoteSetIsUnreliableWithNoLabel) {
  const Decision d = decide({}, {0.0F, 1});
  EXPECT_EQ(d.label, -1);
  EXPECT_FALSE(d.reliable);
  EXPECT_EQ(d.votes_for_label, 0);
}

TEST(DecisionTest, NonFiniteConfidenceIsBelowThrConf) {
  // Regression: a NaN max-softmax (corrupted member) must be treated as
  // below Thr_Conf even when Thr_Conf is 0, and Inf must not pass either.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<Vote> votes = {{1, nan}, {1, inf}, {2, 0.9F}};
  const Decision d = decide(votes, {0.0F, 1});
  EXPECT_EQ(d.label, 2);
  EXPECT_EQ(d.votes_for_label, 1);
  EXPECT_TRUE(d.reliable);
  // A vote set of only non-finite confidences yields no label at all.
  const Decision none = decide({{1, nan}, {3, inf}}, {0.0F, 1});
  EXPECT_EQ(none.label, -1);
  EXPECT_FALSE(none.reliable);
}

TEST(DecisionTest, DegradedThresholdRenormalizesAgainstSurvivors) {
  // 4-of-6 with two members quarantined becomes 3-of-4, not 4-of-4.
  EXPECT_EQ(degraded_threshold(4, 4, 6), 3);
  // Full quorum is the identity.
  EXPECT_EQ(degraded_threshold(4, 6, 6), 4);
  EXPECT_EQ(degraded_threshold(1, 6, 6), 1);
  // Never below 1, never above the surviving count.
  EXPECT_EQ(degraded_threshold(1, 2, 6), 1);
  EXPECT_EQ(degraded_threshold(12, 3, 6), 3);
  // Lone survivor: any rule collapses to 1-of-1.
  EXPECT_EQ(degraded_threshold(4, 1, 6), 1);
  EXPECT_THROW(degraded_threshold(4, 0, 6), std::invalid_argument);
  EXPECT_THROW(degraded_threshold(4, 7, 6), std::invalid_argument);
}

TEST(DecisionTest, DegradedOverloadKeepsQuorumSatisfiable) {
  // Four survivors of a 4-of-6 rule, three agreeing: unsatisfiable under
  // the raw threshold, reliable under the re-normalized one.
  const std::vector<Vote> votes = {
      {7, 0.9F}, {7, 0.8F}, {7, 0.95F}, {2, 0.9F}};
  EXPECT_FALSE(decide(votes, {0.5F, 4}).reliable);
  const Decision d = decide(votes, {0.5F, 4}, /*active=*/4, /*total=*/6);
  EXPECT_TRUE(d.reliable);
  EXPECT_EQ(d.label, 7);
  EXPECT_EQ(d.votes_for_label, 3);
  // With active == total the overload is exactly decide().
  const Decision full = decide(votes, {0.5F, 4}, 6, 6);
  EXPECT_FALSE(full.reliable);
}

TEST(DecisionTest, MajorityThresholdFormula) {
  EXPECT_EQ(majority_threshold(2), 2);
  EXPECT_EQ(majority_threshold(3), 2);
  EXPECT_EQ(majority_threshold(4), 3);
  EXPECT_EQ(majority_threshold(5), 3);
  EXPECT_EQ(majority_threshold(30), 16);
}

TEST(DecisionTest, MaxAgreementIgnoresConfidence) {
  const std::vector<Vote> votes = {
      {1, 0.01F}, {1, 0.02F}, {1, 0.03F}, {2, 0.99F}};
  EXPECT_EQ(max_agreement(votes), 3);
  EXPECT_EQ(max_agreement({}), 0);
}

TEST(DecisionTest, VotesFromProbabilities) {
  const Tensor probs(Shape{2, 3}, {0.1F, 0.7F, 0.2F, 0.5F, 0.25F, 0.25F});
  const auto votes = votes_from_probabilities(probs);
  ASSERT_EQ(votes.size(), 2U);
  EXPECT_EQ(votes[0].label, 1);
  EXPECT_FLOAT_EQ(votes[0].confidence, 0.7F);
  EXPECT_EQ(votes[1].label, 0);
  EXPECT_FLOAT_EQ(votes[1].confidence, 0.5F);
}

TEST(DecisionTest, VotesRejectNonMatrix) {
  const Tensor probs(Shape{1, 1, 2, 2});
  EXPECT_THROW(votes_from_probabilities(probs), std::invalid_argument);
}

}  // namespace
}  // namespace pgmr::mr
