// Threshold sweep and Pareto-frontier selection tests.
#include "mr/pareto.h"

#include <gtest/gtest.h>

namespace pgmr::mr {
namespace {

SweepPoint point(double tp, double fp) {
  return {Thresholds{0.0F, 1}, tp, fp};
}

TEST(ParetoTest, DominatedPointsRemoved) {
  const auto frontier = pareto_frontier(
      {point(0.9, 0.05), point(0.8, 0.10), point(0.7, 0.02),
       point(0.6, 0.08) /* dominated by all useful points */});
  ASSERT_EQ(frontier.size(), 2U);
  EXPECT_DOUBLE_EQ(frontier[0].fp_rate, 0.02);
  EXPECT_DOUBLE_EQ(frontier[1].fp_rate, 0.05);
}

TEST(ParetoTest, DuplicateRatePairsCollapse) {
  const auto frontier =
      pareto_frontier({point(0.9, 0.05), point(0.9, 0.05), point(0.9, 0.05)});
  EXPECT_EQ(frontier.size(), 1U);
}

TEST(ParetoTest, SortedByAscendingFp) {
  const auto frontier = pareto_frontier(
      {point(0.95, 0.20), point(0.5, 0.01), point(0.8, 0.05)});
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_LE(frontier[i - 1].fp_rate, frontier[i].fp_rate);
  }
}

TEST(SelectTest, PicksMinFpMeetingFloor) {
  const std::vector<SweepPoint> frontier = {point(0.5, 0.01), point(0.8, 0.05),
                                            point(0.95, 0.20)};
  const auto chosen = select_by_tp_floor(frontier, 0.75);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_DOUBLE_EQ(chosen->tp_rate, 0.8);
  EXPECT_DOUBLE_EQ(chosen->fp_rate, 0.05);
}

TEST(SelectTest, FallsBackToMaxTpWhenFloorUnreachable) {
  const std::vector<SweepPoint> frontier = {point(0.5, 0.01), point(0.8, 0.05)};
  const auto chosen = select_by_tp_floor(frontier, 0.99);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_DOUBLE_EQ(chosen->tp_rate, 0.8);
}

TEST(SelectTest, EmptyFrontierYieldsNothing) {
  EXPECT_FALSE(select_by_tp_floor({}, 0.5).has_value());
}

TEST(SweepTest, GridCoversConfAndFreq) {
  // Two members, two samples; ensure sweep covers conf grid x freq in {1,2}.
  const MemberVotes votes = {{{0, 0.9F}, {1, 0.3F}},
                             {{0, 0.7F}, {0, 0.6F}}};
  const std::vector<std::int64_t> labels = {0, 0};
  const auto points = sweep_thresholds(votes, labels, default_conf_grid());
  EXPECT_EQ(points.size(), default_conf_grid().size() * 2);
  // At conf 0, freq 1: sample 0 -> TP (both vote 0); sample 1 tie (1 vs 0)
  // -> unreliable.
  const auto& p0 = points.front();
  EXPECT_EQ(p0.thresholds.freq, 1);
  EXPECT_DOUBLE_EQ(p0.tp_rate, 0.5);
  EXPECT_DOUBLE_EQ(p0.fp_rate, 0.0);
}

TEST(SweepTest, SingleNetworkSweepMatchesEvaluateSingle) {
  const Tensor probs(Shape{2, 2}, {0.9F, 0.1F, 0.4F, 0.6F});
  const std::vector<std::int64_t> labels = {0, 0};
  const auto points = sweep_single(probs, labels, {0.0F, 0.5F, 0.95F});
  ASSERT_EQ(points.size(), 3U);
  EXPECT_DOUBLE_EQ(points[0].tp_rate, 0.5);  // one right, one wrong
  EXPECT_DOUBLE_EQ(points[0].fp_rate, 0.5);
  EXPECT_DOUBLE_EQ(points[1].fp_rate, 0.5);  // 0.6 wrong survives 0.5
  EXPECT_DOUBLE_EQ(points[2].tp_rate, 0.0);  // nothing survives 0.95
  EXPECT_DOUBLE_EQ(points[2].fp_rate, 0.0);
}

TEST(SweepTest, DefaultGridShape) {
  const auto grid = default_conf_grid();
  EXPECT_EQ(grid.size(), 20U);
  EXPECT_FLOAT_EQ(grid.front(), 0.0F);
  EXPECT_FLOAT_EQ(grid.back(), 0.95F);
}

TEST(ParetoPropertyTest, FrontierOfRandomCloudIsNonDominated) {
  // Property: no frontier point may dominate another frontier point.
  std::vector<SweepPoint> cloud;
  unsigned seed = 12345;
  auto next = [&seed] {
    seed = seed * 1103515245 + 12345;
    return static_cast<double>((seed >> 16) & 0x7FFF) / 32768.0;
  };
  for (int i = 0; i < 200; ++i) cloud.push_back(point(next(), next()));
  const auto frontier = pareto_frontier(cloud);
  ASSERT_FALSE(frontier.empty());
  for (const auto& a : frontier) {
    for (const auto& b : frontier) {
      const bool dominates = a.tp_rate >= b.tp_rate && a.fp_rate <= b.fp_rate &&
                             (a.tp_rate > b.tp_rate || a.fp_rate < b.fp_rate);
      EXPECT_FALSE(dominates);
    }
  }
}

}  // namespace
}  // namespace pgmr::mr
