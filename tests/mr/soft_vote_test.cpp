// Soft-voting (deep-ensembles baseline) tests.
#include "mr/soft_vote.h"

#include <gtest/gtest.h>

namespace pgmr::mr {
namespace {

TEST(SoftVoteTest, AverageIsElementwiseMean) {
  const Tensor a(Shape{1, 2}, {0.8F, 0.2F});
  const Tensor b(Shape{1, 2}, {0.4F, 0.6F});
  const Tensor mean = average_probabilities({a, b});
  EXPECT_FLOAT_EQ(mean.at(0, 0), 0.6F);
  EXPECT_FLOAT_EQ(mean.at(0, 1), 0.4F);
}

TEST(SoftVoteTest, AverageStaysNormalized) {
  const Tensor a(Shape{2, 3}, {0.5F, 0.3F, 0.2F, 0.1F, 0.1F, 0.8F});
  const Tensor b(Shape{2, 3}, {0.2F, 0.5F, 0.3F, 0.6F, 0.2F, 0.2F});
  const Tensor mean = average_probabilities({a, b});
  for (std::int64_t n = 0; n < 2; ++n) {
    float row = 0.0F;
    for (std::int64_t c = 0; c < 3; ++c) row += mean.at(n, c);
    EXPECT_NEAR(row, 1.0F, 1e-6F);
  }
}

TEST(SoftVoteTest, RejectsEmptyOrRagged) {
  EXPECT_THROW(average_probabilities({}), std::invalid_argument);
  const Tensor a(Shape{1, 2});
  const Tensor b(Shape{2, 2});
  EXPECT_THROW(average_probabilities({a, b}), std::invalid_argument);
}

TEST(SoftVoteTest, AveragingCanOverruleASingleConfidentMember) {
  // Member 0 is confidently wrong; members 1 and 2 lean right.
  const Tensor m0(Shape{1, 2}, {0.95F, 0.05F});
  const Tensor m1(Shape{1, 2}, {0.25F, 0.75F});
  const Tensor m2(Shape{1, 2}, {0.20F, 0.80F});
  const std::vector<std::int64_t> labels = {1};
  const Outcome o = evaluate_soft({m0, m1, m2}, labels, 0.0F);
  EXPECT_EQ(o.tp, 1);  // mean = (1.40/3, 1.60/3): class 1 wins
}

TEST(SoftVoteTest, ThresholdFlagsLowMeanConfidence) {
  const Tensor m0(Shape{1, 2}, {0.55F, 0.45F});
  const Tensor m1(Shape{1, 2}, {0.45F, 0.55F});
  const std::vector<std::int64_t> labels = {0};
  EXPECT_EQ(evaluate_soft({m0, m1}, labels, 0.6F).unreliable, 1);
  // Mean is exactly (0.5, 0.5): at threshold 0.4 the argmax (class 0 by
  // tie-break) is accepted.
  EXPECT_EQ(evaluate_soft({m0, m1}, labels, 0.4F).tp, 1);
}

TEST(SoftVoteTest, SweepMatchesSingleEvaluation) {
  const Tensor m0(Shape{2, 2}, {0.9F, 0.1F, 0.3F, 0.7F});
  const Tensor m1(Shape{2, 2}, {0.6F, 0.4F, 0.4F, 0.6F});
  const std::vector<std::int64_t> labels = {0, 0};
  const auto points = sweep_soft({m0, m1}, labels, {0.0F, 0.7F});
  ASSERT_EQ(points.size(), 2U);
  const Outcome direct = evaluate_soft({m0, m1}, labels, 0.7F);
  EXPECT_DOUBLE_EQ(points[1].tp_rate, direct.tp_rate());
  EXPECT_DOUBLE_EQ(points[1].fp_rate, direct.fp_rate());
}

}  // namespace
}  // namespace pgmr::mr
