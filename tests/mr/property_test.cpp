// Property-style sweeps over the decision engine and staged activation,
// using randomized vote matrices (parameterized over threshold settings).
#include <gtest/gtest.h>

#include <algorithm>

#include "mr/pareto.h"
#include "mr/rade.h"
#include "tensor/random.h"

namespace pgmr::mr {
namespace {

MemberVotes random_votes(int members, int samples, int classes, Rng& rng) {
  MemberVotes votes(static_cast<std::size_t>(members));
  for (auto& member : votes) {
    member.resize(static_cast<std::size_t>(samples));
    for (auto& v : member) {
      v.label = rng.randint(0, classes - 1);
      v.confidence = rng.uniform(0.0F, 1.0F);
    }
  }
  return votes;
}

std::vector<std::int64_t> random_labels(int samples, int classes, Rng& rng) {
  std::vector<std::int64_t> labels(static_cast<std::size_t>(samples));
  for (auto& l : labels) l = rng.randint(0, classes - 1);
  return labels;
}

struct ThresholdCase {
  float conf;
  int freq;
};

class EngineProperty : public ::testing::TestWithParam<ThresholdCase> {};

TEST_P(EngineProperty, OutcomePartitionsEvaluationSet) {
  Rng rng(101);
  const MemberVotes votes = random_votes(5, 200, 7, rng);
  const auto labels = random_labels(200, 7, rng);
  const Thresholds t{GetParam().conf, GetParam().freq};
  const Outcome o = evaluate(votes, labels, t);
  EXPECT_EQ(o.tp + o.fp + o.unreliable, o.total);
  EXPECT_EQ(o.total, 200);
}

TEST_P(EngineProperty, DecisionInvariantToVoteOrder) {
  Rng rng(102);
  const Thresholds t{GetParam().conf, GetParam().freq};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Vote> votes;
    const int n = static_cast<int>(rng.randint(1, 8));
    for (int i = 0; i < n; ++i) {
      votes.push_back({rng.randint(0, 3), rng.uniform(0.0F, 1.0F)});
    }
    const Decision before = decide(votes, t);
    std::vector<Vote> shuffled = votes;
    rng.shuffle(shuffled);
    const Decision after = decide(shuffled, t);
    EXPECT_EQ(before.label, after.label);
    EXPECT_EQ(before.reliable, after.reliable);
    EXPECT_EQ(before.votes_for_label, after.votes_for_label);
  }
}

TEST_P(EngineProperty, StagedActivationBoundsHold) {
  Rng rng(103);
  const Thresholds t{GetParam().conf, GetParam().freq};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Vote> votes;
    const int n = static_cast<int>(rng.randint(2, 8));
    for (int i = 0; i < n; ++i) {
      votes.push_back({rng.randint(0, 3), rng.uniform(0.0F, 1.0F)});
    }
    const StagedDecision sd = staged_decide(votes, t);
    EXPECT_GE(sd.activated, std::min(std::max(t.freq, 1), n));
    EXPECT_LE(sd.activated, n);
    // The staged verdict equals the full engine's verdict on the prefix.
    const std::vector<Vote> prefix(votes.begin(),
                                   votes.begin() + sd.activated);
    const Decision full = decide(prefix, t);
    EXPECT_EQ(sd.decision.reliable, full.reliable);
    EXPECT_EQ(sd.decision.label, full.label);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, EngineProperty,
    ::testing::Values(ThresholdCase{0.0F, 1}, ThresholdCase{0.0F, 3},
                      ThresholdCase{0.5F, 2}, ThresholdCase{0.8F, 4},
                      ThresholdCase{0.95F, 5}, ThresholdCase{0.3F, 1}),
    [](const ::testing::TestParamInfo<ThresholdCase>& info) {
      return "conf" + std::to_string(static_cast<int>(info.param.conf * 100)) +
             "_freq" + std::to_string(info.param.freq);
    });

TEST(EngineMonotonicity, ReliableCountNonIncreasingInFreq) {
  Rng rng(104);
  const MemberVotes votes = random_votes(6, 300, 5, rng);
  const auto labels = random_labels(300, 5, rng);
  for (float conf : {0.0F, 0.4F, 0.8F}) {
    std::int64_t prev = 301;
    for (int freq = 1; freq <= 6; ++freq) {
      const Outcome o = evaluate(votes, labels, {conf, freq});
      const std::int64_t reliable = o.tp + o.fp;
      EXPECT_LE(reliable, prev) << "conf=" << conf << " freq=" << freq;
      prev = reliable;
    }
  }
}

TEST(EngineMonotonicity, AcceptedVotesNonIncreasingInConf) {
  // Per sample: the winning label's acceptable-vote count can only shrink
  // as Thr_Conf rises.
  Rng rng(105);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Vote> votes;
    const int n = static_cast<int>(rng.randint(1, 8));
    for (int i = 0; i < n; ++i) {
      votes.push_back({rng.randint(0, 3), rng.uniform(0.0F, 1.0F)});
    }
    int prev_votes = n + 1;
    for (float conf : {0.0F, 0.25F, 0.5F, 0.75F, 0.95F}) {
      const Decision d = decide(votes, {conf, 1});
      EXPECT_LE(d.votes_for_label, prev_votes);
      prev_votes = d.votes_for_label;
    }
  }
}

TEST(ParetoProperty, FrontierSelectionsAreAchievableSweepPoints) {
  Rng rng(106);
  const MemberVotes votes = random_votes(4, 150, 6, rng);
  const auto labels = random_labels(150, 6, rng);
  const auto points = sweep_thresholds(votes, labels, default_conf_grid());
  const auto frontier = pareto_frontier(points);
  ASSERT_FALSE(frontier.empty());
  // Every frontier point must re-evaluate to exactly its recorded rates.
  for (const auto& p : frontier) {
    const Outcome o = evaluate(votes, labels, p.thresholds);
    EXPECT_DOUBLE_EQ(o.tp_rate(), p.tp_rate);
    EXPECT_DOUBLE_EQ(o.fp_rate(), p.fp_rate);
  }
}

TEST(RadeProperty, StagedCountsPartitionAndBound) {
  Rng rng(107);
  const MemberVotes votes = random_votes(5, 200, 4, rng);
  const auto labels = random_labels(200, 4, rng);
  const auto priority = contribution_priority(votes, labels);
  for (int freq = 1; freq <= 5; ++freq) {
    const StagedOutcome so =
        evaluate_staged(votes, labels, priority, {0.3F, freq});
    std::int64_t histogram_total = 0;
    for (std::int64_t c : so.activation_histogram) histogram_total += c;
    EXPECT_EQ(histogram_total, 200);
    EXPECT_EQ(so.outcome.tp + so.outcome.fp + so.outcome.unreliable, 200);
    EXPECT_GE(so.mean_activated(), static_cast<double>(std::min(freq, 5)));
    EXPECT_LE(so.mean_activated(), 5.0);
  }
}

}  // namespace
}  // namespace pgmr::mr
