// Outcome accounting tests: TP / FP / unreliable taxonomy.
#include "mr/evaluate.h"

#include <gtest/gtest.h>

namespace pgmr::mr {
namespace {

// Three members, four samples, true labels {0, 1, 2, 0}.
MemberVotes make_votes() {
  return {
      // member 0: right, right, wrong, right
      {{0, 0.9F}, {1, 0.9F}, {0, 0.9F}, {0, 0.9F}},
      // member 1: right, right, wrong (same wrong label), low-conf right
      {{0, 0.8F}, {1, 0.7F}, {0, 0.8F}, {0, 0.2F}},
      // member 2: right, wrong, right, right
      {{0, 0.9F}, {2, 0.6F}, {2, 0.9F}, {0, 0.9F}},
  };
}

const std::vector<std::int64_t> kLabels = {0, 1, 2, 0};

TEST(EvaluateTest, PermissiveThresholdsCountMajorities) {
  const Outcome o = evaluate(make_votes(), kLabels, {0.0F, 2});
  // Sample 0: 3x label0 -> TP. Sample 1: 2x label1 -> TP.
  // Sample 2: 2x label0 (wrong) -> FP. Sample 3: 3x label0 -> TP.
  EXPECT_EQ(o.tp, 3);
  EXPECT_EQ(o.fp, 1);
  EXPECT_EQ(o.unreliable, 0);
  EXPECT_EQ(o.total, 4);
  EXPECT_DOUBLE_EQ(o.tp_rate(), 0.75);
  EXPECT_DOUBLE_EQ(o.fp_rate(), 0.25);
}

TEST(EvaluateTest, AllIdenticalCatchesTheSharedError) {
  const Outcome o = evaluate(make_votes(), kLabels, {0.0F, 3});
  // Only samples 0 and 3 are unanimous.
  EXPECT_EQ(o.tp, 2);
  EXPECT_EQ(o.fp, 0);
  EXPECT_EQ(o.unreliable, 2);
}

TEST(EvaluateTest, ConfidenceThresholdFlipsMarginalSamples) {
  // Thr_Conf 0.5 drops member 1's weak vote on sample 3 — still 2 votes.
  // Thr_Freq 3 then makes sample 3 unreliable.
  const Outcome o = evaluate(make_votes(), kLabels, {0.5F, 3});
  EXPECT_EQ(o.tp, 1);
  EXPECT_EQ(o.unreliable, 3);
}

TEST(EvaluateTest, RatesOnEmptyOutcome) {
  const Outcome o;
  EXPECT_DOUBLE_EQ(o.tp_rate(), 0.0);
  EXPECT_DOUBLE_EQ(o.fp_rate(), 0.0);
}

TEST(EvaluateTest, RejectsBadShapes) {
  EXPECT_THROW(evaluate({}, kLabels, {0.0F, 1}), std::invalid_argument);
  EXPECT_THROW(evaluate(make_votes(), {0, 1}, {0.0F, 1}),
               std::invalid_argument);
}

TEST(EvaluateTest, VotesFromMembersRejectsRagged) {
  const Tensor a(Shape{2, 3});
  const Tensor b(Shape{3, 3});
  EXPECT_THROW(votes_from_members({a, b}), std::invalid_argument);
}

TEST(EvaluateTest, SampleVotesGathersAcrossMembers) {
  const MemberVotes votes = make_votes();
  const auto sample = sample_votes(votes, 2);
  ASSERT_EQ(sample.size(), 3U);
  EXPECT_EQ(sample[0].label, 0);
  EXPECT_EQ(sample[2].label, 2);
}

TEST(EvaluateSingleTest, ThresholdZeroMatchesAccuracy) {
  const Tensor probs(Shape{3, 2}, {0.9F, 0.1F, 0.4F, 0.6F, 0.8F, 0.2F});
  const std::vector<std::int64_t> labels = {0, 0, 0};
  const Outcome o = evaluate_single(probs, labels, 0.0F);
  EXPECT_EQ(o.tp, 2);
  EXPECT_EQ(o.fp, 1);
  EXPECT_EQ(o.unreliable, 0);
}

TEST(EvaluateSingleTest, HighThresholdMovesBothTpAndFpToUnreliable) {
  const Tensor probs(Shape{3, 2}, {0.9F, 0.1F, 0.4F, 0.6F, 0.55F, 0.45F});
  const std::vector<std::int64_t> labels = {0, 0, 1};
  const Outcome o = evaluate_single(probs, labels, 0.7F);
  EXPECT_EQ(o.tp, 1);         // only the 0.9 prediction survives
  EXPECT_EQ(o.fp, 0);
  EXPECT_EQ(o.unreliable, 2);
}

}  // namespace
}  // namespace pgmr::mr
