// Member/Ensemble tests: preprocessor wiring, precision wiring, cost hooks.
#include "mr/ensemble.h"

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "tensor/random.h"

namespace pgmr::mr {
namespace {

nn::Network make_net(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  auto conv = std::make_unique<nn::Conv2D>(1, 3, 3, 1, 1);
  conv->init(rng);
  layers.push_back(std::move(conv));
  layers.push_back(std::make_unique<nn::ReLU>());
  layers.push_back(std::make_unique<nn::Flatten>());
  auto fc = std::make_unique<nn::Dense>(3 * 8 * 8, 4);
  fc->init(rng);
  layers.push_back(std::move(fc));
  return nn::Network("m", std::move(layers));
}

Tensor batch(std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(Shape{6, 1, 8, 8});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0.0F, 1.0F);
  return x;
}

TEST(MemberTest, AppliesPreprocessorBeforeNetwork) {
  // A FlipX member must produce the same probabilities on x as an Identity
  // member does on FlipX(x).
  Member flipped(std::make_unique<prep::FlipX>(), make_net(1));
  Member plain(std::make_unique<prep::Identity>(), make_net(1));
  const Tensor x = batch(2);
  const Tensor manual = prep::FlipX().apply(x);
  EXPECT_TRUE(
      allclose(flipped.probabilities(x), plain.probabilities(manual), 1e-6F));
}

TEST(MemberTest, DescriptionCombinesPrepAndNetwork) {
  Member m(std::make_unique<prep::FlipY>(), make_net(1));
  EXPECT_EQ(m.description(), "FlipY/m");
  EXPECT_EQ(m.prep_name(), "FlipY");
  EXPECT_EQ(m.bits(), 32);
}

TEST(MemberTest, ReducedPrecisionChangesBitsAndCost) {
  Member full(std::make_unique<prep::Identity>(), make_net(1), 32);
  Member packed(std::make_unique<prep::Identity>(), make_net(1), 14);
  EXPECT_EQ(packed.bits(), 14);
  const perf::CostModel model;
  const Shape in{1, 1, 8, 8};
  EXPECT_LT(packed.cost(in, model).energy_j, full.cost(in, model).energy_j);
}

TEST(EnsembleTest, MemberProbabilitiesShapes) {
  Ensemble e;
  e.add(Member(std::make_unique<prep::Identity>(), make_net(1)));
  e.add(Member(std::make_unique<prep::FlipX>(), make_net(2)));
  EXPECT_EQ(e.size(), 2U);
  const auto probs = e.member_probabilities(batch(3));
  ASSERT_EQ(probs.size(), 2U);
  EXPECT_EQ(probs[0].shape(), Shape({6, 4}));
  // Independently-seeded networks disagree.
  EXPECT_FALSE(allclose(probs[0], probs[1], 1e-3F));
}

TEST(EnsembleTest, MemberVotesMatchProbabilities) {
  Ensemble e;
  e.add(Member(std::make_unique<prep::Identity>(), make_net(4)));
  const Tensor x = batch(5);
  const auto probs = e.member_probabilities(x);
  const MemberVotes votes = e.member_votes(x);
  ASSERT_EQ(votes.size(), 1U);
  for (std::int64_t n = 0; n < 6; ++n) {
    EXPECT_EQ(votes[0][static_cast<std::size_t>(n)].label,
              probs[0].argmax_row(n));
  }
}

TEST(EnsembleTest, MemberCostsOnePerMember) {
  Ensemble e;
  e.add(Member(std::make_unique<prep::Identity>(), make_net(1), 32));
  e.add(Member(std::make_unique<prep::Identity>(), make_net(2), 16));
  const auto costs = e.member_costs(Shape{1, 1, 8, 8}, perf::CostModel{});
  ASSERT_EQ(costs.size(), 2U);
  EXPECT_GT(costs[0].latency_s, 0.0);
  EXPECT_LE(costs[1].energy_j, costs[0].energy_j);
}

}  // namespace
}  // namespace pgmr::mr
