// Cost-driven protection planning: the frontier sweep prices every
// per-member ABFT level assignment, keeps the (residual_sdc, latency)
// non-dominated set, and select_protection picks the cheapest plan under
// an SDC budget — assigning cheaper levels to low-sensitivity members
// while high-sensitivity members keep full protection.
#include "mr/protection.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "tensor/random.h"

namespace pgmr::mr {
namespace {

/// Synthetic planner input: distinct latency per level so frontier order
/// is unambiguous (the real cost model prices final_fc as free; the
/// planner itself must not rely on that).
MemberProtectionInput synth(double share, double sensitivity,
                            double base_latency) {
  MemberProtectionInput m;
  m.param_share = share;
  m.sensitivity = sensitivity;
  m.cost[0] = {base_latency, base_latency};          // off
  m.cost[1] = {base_latency * 1.02, base_latency};   // final_fc
  m.cost[2] = {base_latency * 1.06, base_latency};   // full
  return m;
}

nn::Network make_net(std::uint64_t seed, std::int64_t channels) {
  Rng rng(seed);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  auto conv = std::make_unique<nn::Conv2D>(1, channels, 3, 1, 1);
  conv->init(rng);
  layers.push_back(std::move(conv));
  layers.push_back(std::make_unique<nn::ReLU>());
  layers.push_back(std::make_unique<nn::Flatten>());
  auto fc = std::make_unique<nn::Dense>(channels * 8 * 8, 4);
  fc->init(rng);
  layers.push_back(std::move(fc));
  return nn::Network("m", std::move(layers));
}

TEST(CoverageModelTest, MapsEachLevel) {
  const CoverageModel def;
  EXPECT_DOUBLE_EQ(def.coverage(nn::Protection::off), 0.0);
  EXPECT_DOUBLE_EQ(def.coverage(nn::Protection::final_fc), 0.35);
  EXPECT_DOUBLE_EQ(def.coverage(nn::Protection::full), 1.0);

  const CoverageModel custom{0.1, 0.5, 0.9};
  EXPECT_DOUBLE_EQ(custom.coverage(nn::Protection::off), 0.1);
  EXPECT_DOUBLE_EQ(custom.coverage(nn::Protection::final_fc), 0.5);
  EXPECT_DOUBLE_EQ(custom.coverage(nn::Protection::full), 0.9);
}

TEST(ProtectionFrontierTest, ContainsBothExtremes) {
  const std::vector<MemberProtectionInput> members = {synth(0.5, 0.8, 1.0),
                                                      synth(0.5, 0.4, 2.0)};
  const auto frontier = protection_frontier(members);
  ASSERT_FALSE(frontier.empty());

  // Sorted by ascending latency; the cheapest plan is uniform off and the
  // most protective has zero residual (uniform full).
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GE(frontier[i].latency_s, frontier[i - 1].latency_s);
  }
  EXPECT_EQ(frontier.front().levels,
            (std::vector<nn::Protection>{nn::Protection::off,
                                         nn::Protection::off}));
  EXPECT_DOUBLE_EQ(frontier.front().residual_sdc, 0.5 * 0.8 + 0.5 * 0.4);
  EXPECT_EQ(frontier.back().levels,
            (std::vector<nn::Protection>{nn::Protection::full,
                                         nn::Protection::full}));
  EXPECT_DOUBLE_EQ(frontier.back().residual_sdc, 0.0);
}

TEST(ProtectionFrontierTest, PlansAreMutuallyNonDominated) {
  const std::vector<MemberProtectionInput> members = {
      synth(0.4, 0.9, 1.0), synth(0.35, 0.1, 1.5), synth(0.25, 0.5, 0.7)};
  const auto frontier = protection_frontier(members);
  ASSERT_GE(frontier.size(), 2U);
  for (const ProtectionPlan& p : frontier) {
    for (const ProtectionPlan& q : frontier) {
      const bool dominates = q.residual_sdc <= p.residual_sdc &&
                             q.latency_s <= p.latency_s &&
                             (q.residual_sdc < p.residual_sdc ||
                              q.latency_s < p.latency_s);
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(ProtectionFrontierTest, RejectsEmptyAndOversizedInput) {
  EXPECT_THROW(protection_frontier({}), std::invalid_argument);
  const std::vector<MemberProtectionInput> thirteen(13, synth(1.0, 1.0, 1.0));
  EXPECT_THROW(protection_frontier(thirteen), std::invalid_argument);
}

TEST(SelectProtectionTest, PicksCheapestPlanUnderBudget) {
  const std::vector<MemberProtectionInput> members = {synth(0.5, 0.8, 1.0),
                                                      synth(0.5, 0.4, 1.0)};
  const auto frontier = protection_frontier(members);

  // A generous budget admits the cheapest plan outright.
  const ProtectionPlan loose = select_protection(frontier, 1.0);
  EXPECT_EQ(loose.latency_s, frontier.front().latency_s);

  // A zero budget forces uniform full (the only zero-residual plan).
  const ProtectionPlan tight = select_protection(frontier, 0.0);
  EXPECT_DOUBLE_EQ(tight.residual_sdc, 0.0);
  for (nn::Protection level : tight.levels) {
    EXPECT_EQ(level, nn::Protection::full);
  }
}

TEST(SelectProtectionTest, UnreachableBudgetFallsBackToMostProtective) {
  // coverage(full) < 1 leaves residual even at uniform full, so a budget of
  // 0 is unreachable; the fallback must still return the safest plan.
  const std::vector<MemberProtectionInput> members = {synth(0.6, 1.0, 1.0),
                                                      synth(0.4, 1.0, 1.0)};
  const auto frontier = protection_frontier(members, CoverageModel{0.0, 0.3, 0.9});
  const ProtectionPlan plan = select_protection(frontier, 0.0);
  for (nn::Protection level : plan.levels) {
    EXPECT_EQ(level, nn::Protection::full);
  }
  EXPECT_GT(plan.residual_sdc, 0.0);
}

TEST(SelectProtectionTest, EmptyFrontierThrows) {
  EXPECT_THROW(select_protection({}, 0.5), std::invalid_argument);
}

TEST(SelectProtectionTest, LowSensitivityMemberGetsCheaperLevel) {
  // The ISSUE acceptance shape: one member whose vote almost never flips
  // the verdict (sensitivity 0.02) and one that usually does (0.9). Under
  // a 5 % SDC budget the planner keeps full ABFT on the sensitive member
  // and drops the insensitive one to a cheaper level, saving latency over
  // uniform full.
  const std::vector<MemberProtectionInput> members = {synth(0.5, 0.02, 1.0),
                                                      synth(0.5, 0.9, 1.0)};
  const auto frontier = protection_frontier(members);
  const ProtectionPlan plan = select_protection(frontier, 0.05);

  EXPECT_NE(plan.levels[0], nn::Protection::full)
      << "low-sensitivity member should not pay for full ABFT";
  EXPECT_EQ(plan.levels[1], nn::Protection::full);
  EXPECT_LE(plan.residual_sdc, 0.05);

  double uniform_full_latency = 0.0;
  for (const MemberProtectionInput& m : members) {
    uniform_full_latency += m.cost[2].latency_s;
  }
  EXPECT_LT(plan.latency_s, uniform_full_latency);
}

TEST(SelectProtectionTest, EnergyBreaksLatencyTiesForMemoryBoundMembers) {
  // Memory-bound members under the roofline: every level has the same
  // latency, only energy prices the ABFT surcharge. The frontier must not
  // collapse to uniform full, and the budgeted pick still drops the
  // low-sensitivity member to a cheaper level.
  auto memory_bound = [](double sensitivity) {
    MemberProtectionInput m;
    m.param_share = 0.5;
    m.sensitivity = sensitivity;
    m.cost[0] = {1.0, 1.0};
    m.cost[1] = {1.0, 1.0};
    m.cost[2] = {1.0, 1.06};  // full: same latency, more energy
    return m;
  };
  const std::vector<MemberProtectionInput> members = {memory_bound(0.02),
                                                      memory_bound(0.9)};
  const auto frontier = protection_frontier(members);
  EXPECT_GT(frontier.size(), 1U) << "energy tie-break must keep cheap plans";

  const ProtectionPlan plan = select_protection(frontier, 0.05);
  EXPECT_NE(plan.levels[0], nn::Protection::full);
  EXPECT_EQ(plan.levels[1], nn::Protection::full);
  EXPECT_LT(plan.energy_j, 2.0 * 1.06);
}

TEST(ProtectionInputsTest, SharesCostsAndValidation) {
  Ensemble e;
  e.add(Member(std::make_unique<prep::Identity>(), make_net(1, 2)));
  e.add(Member(std::make_unique<prep::Identity>(), make_net(2, 8)));
  const perf::CostModel model;
  const Shape in{1, 1, 8, 8};

  const auto inputs = protection_inputs(e, in, model);
  ASSERT_EQ(inputs.size(), 2U);
  EXPECT_NEAR(inputs[0].param_share + inputs[1].param_share, 1.0, 1e-12);
  EXPECT_LT(inputs[0].param_share, inputs[1].param_share)
      << "wider net holds more parameters, so more of the fault mass";
  EXPECT_DOUBLE_EQ(inputs[0].sensitivity, 1.0);  // conservative default

  for (const MemberProtectionInput& m : inputs) {
    // full pays the abft_macs surcharge in energy; latency never decreases.
    EXPECT_GT(m.cost[2].energy_j, m.cost[0].energy_j);
    EXPECT_GE(m.cost[2].latency_s, m.cost[0].latency_s);
    EXPECT_GE(m.cost[1].latency_s, m.cost[0].latency_s);
  }

  const std::vector<double> sens = {0.5, 0.25};
  const auto weighted = protection_inputs(e, in, model, sens);
  EXPECT_DOUBLE_EQ(weighted[0].sensitivity, 0.5);
  EXPECT_DOUBLE_EQ(weighted[1].sensitivity, 0.25);

  EXPECT_THROW(protection_inputs(e, in, model, {0.5}), std::invalid_argument);
}

}  // namespace
}  // namespace pgmr::mr
