// End-to-end integration: the full PolygraphMR pipeline on the MNIST-tier
// benchmark — train/load members, profile thresholds on validation, then
// verify the paper's core claims hold on the held-out test split:
//   (1) FP rate drops vs. the baseline network,
//   (2) TP stays at (or above) the baseline accuracy floor,
//   (3) RAMR (reduced precision) keeps the system usable,
//   (4) RADE activates fewer members on average without changing verdict
//       quality much.
#include <gtest/gtest.h>

#include <cstdlib>

#include "polygraph/builder.h"
#include "polygraph/system.h"
#include "zoo/zoo.h"

namespace pgmr {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
#ifdef PGMR_TEST_CACHE_DIR
    ::setenv("PGMR_CACHE_DIR", PGMR_TEST_CACHE_DIR, /*overwrite=*/0);
#endif
  }
};

TEST_F(EndToEndTest, FourMemberSystemReducesFpAtFullTp) {
  const zoo::Benchmark& bm = zoo::find_benchmark("lenet5");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);

  // Baseline: single network, no thresholding.
  nn::Network baseline = zoo::trained_network(bm, "ORG");
  const Tensor base_probs = zoo::probabilities_on(baseline, splits.test);
  const mr::Outcome base =
      mr::evaluate_single(base_probs, splits.test.labels, 0.0F);
  ASSERT_GT(base.fp, 0) << "baseline must make some errors to detect";

  // 4_PGMR with the paper's Table III lenet5 members.
  polygraph::PolygraphSystem sys(zoo::make_ensemble(
      bm, {"ORG", "ConNorm", "FlipX", "Gamma(2.00)"}));
  sys.profile(splits.val.images, splits.val.labels,
              /*tp_floor=*/base.tp_rate());
  const mr::Outcome pg = sys.evaluate(splits.test.images, splits.test.labels);

  EXPECT_LT(pg.fp_rate(), base.fp_rate());
  EXPECT_GE(pg.tp_rate(), base.tp_rate() - 0.01);  // small split-shift slack
}

TEST_F(EndToEndTest, ReducedPrecisionSystemStaysClose) {
  const zoo::Benchmark& bm = zoo::find_benchmark("lenet5");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);

  polygraph::PolygraphSystem full(zoo::make_ensemble(
      bm, {"ORG", "ConNorm", "FlipX", "Gamma(2.00)"}, 32));
  polygraph::PolygraphSystem packed(zoo::make_ensemble(
      bm, {"ORG", "ConNorm", "FlipX", "Gamma(2.00)"}, 16));
  const mr::Thresholds t{0.5F, 3};
  full.set_thresholds(t);
  packed.set_thresholds(t);

  const mr::Outcome of = full.evaluate(splits.test.images, splits.test.labels);
  const mr::Outcome op =
      packed.evaluate(splits.test.images, splits.test.labels);
  EXPECT_NEAR(op.tp_rate(), of.tp_rate(), 0.02);
  EXPECT_NEAR(op.fp_rate(), of.fp_rate(), 0.02);
}

TEST_F(EndToEndTest, StagedActivationSavesWorkWithoutQualityCollapse) {
  const zoo::Benchmark& bm = zoo::find_benchmark("lenet5");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);

  polygraph::PolygraphSystem sys(zoo::make_ensemble(
      bm, {"ORG", "ConNorm", "FlipX", "Gamma(2.00)"}));
  sys.set_thresholds({0.5F, 2});
  sys.enable_staged(splits.val.images, splits.val.labels);

  const mr::StagedOutcome staged =
      sys.evaluate_staged(splits.test.images, splits.test.labels);
  // Most MNIST-tier inputs settle with the initial two members (Fig 12).
  EXPECT_LT(staged.mean_activated(), 2.5);
  EXPECT_GT(staged.outcome.tp_rate(), 0.9);
}

TEST_F(EndToEndTest, PreprocessedMembersDisagreeMoreThanRandomInit) {
  // Diversity claim (Section III-B): preprocessor-induced behaviour
  // diversity exceeds random-initialization diversity, measured as the
  // fraction of test samples where members' top-1 labels differ.
  const zoo::Benchmark& bm = zoo::find_benchmark("lenet5");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);
  const data::Dataset probe = splits.test.slice(0, 500);

  auto disagreement = [&](mr::Ensemble e) {
    mr::MemberVotes votes = e.member_votes(probe.images);
    std::int64_t differing = 0;
    for (std::size_t n = 0; n < votes[0].size(); ++n) {
      if (votes[0][n].label != votes[1][n].label) ++differing;
    }
    return static_cast<double>(differing) /
           static_cast<double>(votes[0].size());
  };

  const double random_init =
      disagreement(zoo::make_random_init_ensemble(bm, 2));
  const double preprocessed =
      disagreement(zoo::make_ensemble(bm, {"ORG", "ConNorm"}));
  EXPECT_GT(preprocessed, random_init * 0.8);
  // Both must disagree somewhere, else MR is vacuous on this tier.
  EXPECT_GT(preprocessed, 0.0);
}

}  // namespace
}  // namespace pgmr
