// Network container tests: save/load round trips, probabilities, cost, and
// an end-to-end "learns a separable toy problem" check.
#include "nn/network.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/blocks.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/pooling.h"
#include "tensor/random.h"

namespace pgmr::nn {
namespace {

Network make_tiny_cnn(Rng& rng) {
  std::vector<std::unique_ptr<Layer>> layers;
  auto conv = std::make_unique<Conv2D>(1, 4, 3, 1, 1);
  conv->init(rng);
  layers.push_back(std::move(conv));
  layers.push_back(std::make_unique<BatchNorm>(4));
  layers.push_back(std::make_unique<ReLU>());
  layers.push_back(std::make_unique<MaxPool2D>(2));
  layers.push_back(std::make_unique<Flatten>());
  auto fc = std::make_unique<Dense>(4 * 4 * 4, 3);
  fc->init(rng);
  layers.push_back(std::move(fc));
  return Network("tiny", std::move(layers));
}

std::string temp_path(const std::string& stem) {
  return (std::filesystem::temp_directory_path() / stem).string();
}

TEST(NetworkTest, RejectsEmptyLayerList) {
  EXPECT_THROW(Network("empty", {}), std::invalid_argument);
}

TEST(NetworkTest, OutputShapeChains) {
  Rng rng(1);
  const Network net = make_tiny_cnn(rng);
  EXPECT_EQ(net.output_shape(Shape{5, 1, 8, 8}), Shape({5, 3}));
}

TEST(NetworkTest, ProbabilitiesAreNormalized) {
  Rng rng(2);
  Network net = make_tiny_cnn(rng);
  Tensor x(Shape{3, 1, 8, 8});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0.0F, 1.0F);
  const Tensor probs = net.probabilities(x);
  EXPECT_EQ(probs.shape(), Shape({3, 3}));
  for (std::int64_t n = 0; n < 3; ++n) {
    float row = 0.0F;
    for (std::int64_t c = 0; c < 3; ++c) {
      EXPECT_GE(probs.at(n, c), 0.0F);
      row += probs.at(n, c);
    }
    EXPECT_NEAR(row, 1.0F, 1e-5F);
  }
}

TEST(NetworkTest, SaveLoadRoundTripPreservesOutputs) {
  Rng rng(3);
  Network net = make_tiny_cnn(rng);
  Tensor x(Shape{2, 1, 8, 8});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(0.0F, 1.0F);
  const Tensor before = net.forward(x);

  const std::string path = temp_path("pgmr_network_roundtrip.net");
  net.save(path);
  Network loaded = Network::load(path);
  std::filesystem::remove(path);

  EXPECT_EQ(loaded.name(), "tiny");
  const Tensor after = loaded.forward(x);
  EXPECT_TRUE(allclose(before, after, 0.0F));
}

TEST(NetworkTest, SaveLoadPreservesCompositeLayers) {
  Rng rng(4);
  std::vector<std::unique_ptr<Layer>> layers;
  auto body = std::make_unique<Sequential>();
  auto c1 = std::make_unique<Conv2D>(2, 2, 3, 1, 1);
  c1->init(rng);
  body->add(std::move(c1));
  body->add(std::make_unique<ReLU>());
  layers.push_back(std::make_unique<ResidualBlock>(std::move(body), nullptr));
  layers.push_back(std::make_unique<GlobalAvgPool>());
  auto fc = std::make_unique<Dense>(2, 2);
  fc->init(rng);
  layers.push_back(std::move(fc));
  Network net("residual_net", std::move(layers));

  Tensor x(Shape{1, 2, 4, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-1.0F, 1.0F);
  const Tensor before = net.forward(x);

  const std::string path = temp_path("pgmr_network_composite.net");
  net.save(path);
  Network loaded = Network::load(path);
  std::filesystem::remove(path);
  EXPECT_TRUE(allclose(before, loaded.forward(x), 0.0F));
}

TEST(NetworkTest, CostAggregatesLayers) {
  Rng rng(5);
  const Network net = make_tiny_cnn(rng);
  const CostStats s = net.cost(Shape{1, 1, 8, 8});
  // Conv: 4*8*8*9 = 2304 MACs; BN: 256 elementwise; Dense: 64*3 = 192.
  EXPECT_GT(s.macs, 2304 + 192);
  EXPECT_GT(s.param_count, 0);
  EXPECT_GT(s.activation_bytes, 0);
}

TEST(NetworkTest, LearnsLinearlySeparableToyProblem) {
  // Class = brightest quadrant; a tiny CNN must exceed 90 % after a few
  // epochs of SGD if forward/backward/optimizer compose correctly.
  Rng rng(6);
  Network net = make_tiny_cnn(rng);
  const std::int64_t n = 256;
  Tensor images(Shape{n, 1, 8, 8});
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t cls = rng.randint(0, 2);
    labels[static_cast<std::size_t>(i)] = cls;
    for (std::int64_t y = 0; y < 8; ++y) {
      for (std::int64_t x = 0; x < 8; ++x) {
        const bool lit = (cls == 0 && y < 4) || (cls == 1 && y >= 4 && x < 4) ||
                         (cls == 2 && y >= 4 && x >= 4);
        images.at(i, 0, y, x) =
            (lit ? 0.9F : 0.1F) + rng.uniform(-0.05F, 0.05F);
      }
    }
  }

  SGD::Config cfg;
  cfg.learning_rate = 0.1F;
  SGD opt(net.params(), net.grads(), cfg);
  for (int epoch = 0; epoch < 15; ++epoch) {
    for (std::int64_t start = 0; start < n; start += 32) {
      std::vector<float> chunk(
          images.data() + start * 64,
          images.data() + std::min(n, start + 32) * 64);
      const std::int64_t bsz = std::min<std::int64_t>(32, n - start);
      const Tensor batch(Shape{bsz, 1, 8, 8}, std::move(chunk));
      const std::vector<std::int64_t> batch_labels(
          labels.begin() + start, labels.begin() + start + bsz);
      opt.zero_grad();
      const Tensor logits = net.forward(batch, true);
      const LossResult loss = softmax_cross_entropy(logits, batch_labels);
      net.backward(loss.grad_logits);
      opt.step();
    }
  }

  const Tensor logits = net.forward(images, false);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (logits.argmax_row(i) == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(n), 0.9);
}

}  // namespace
}  // namespace pgmr::nn
