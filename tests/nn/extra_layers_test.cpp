// AvgPool2D / Sigmoid / Tanh semantics and gradient checks, plus the Adam
// optimizer.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/adam.h"
#include "nn/extra_layers.h"
#include "tensor/random.h"

namespace pgmr::nn {
namespace {

TEST(AvgPoolTest, AveragesWindows) {
  AvgPool2D pool(2);
  Tensor x(Shape{1, 1, 2, 2}, {1.0F, 2.0F, 3.0F, 6.0F});
  const Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 3.0F);
}

TEST(AvgPoolTest, BackwardDistributesEvenly) {
  AvgPool2D pool(2);
  Tensor x(Shape{1, 1, 2, 2});
  pool.forward(x, true);
  const Tensor dy(Shape{1, 1, 1, 1}, {8.0F});
  const Tensor dx = pool.backward(dy);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(dx[i], 2.0F);
}

TEST(AvgPoolTest, RejectsIndivisibleInput) {
  AvgPool2D pool(3);
  const Tensor x(Shape{1, 1, 4, 4});
  EXPECT_THROW(pool.forward(x, false), std::invalid_argument);
  EXPECT_THROW(AvgPool2D(0), std::invalid_argument);
}

TEST(SigmoidTest, KnownValuesAndRange) {
  Sigmoid sig;
  const Tensor x(Shape{1, 3}, {0.0F, 10.0F, -10.0F});
  const Tensor y = sig.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.5F);
  EXPECT_GT(y[1], 0.99F);
  EXPECT_LT(y[2], 0.01F);
}

TEST(TanhTest, OddSymmetryAndSaturation) {
  Tanh tanh_layer;
  const Tensor x(Shape{1, 3}, {0.0F, 2.0F, -2.0F});
  const Tensor y = tanh_layer.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0F);
  EXPECT_NEAR(y[1], std::tanh(2.0F), 1e-6F);
  EXPECT_FLOAT_EQ(y[1], -y[2]);
}

// Shared numeric gradient check for the smooth activations and avg pool.
template <typename LayerT>
void check_gradient(LayerT& layer, const Shape& in_shape) {
  Rng rng(3);
  Tensor x(in_shape);
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-2, 2);
  const Shape out_shape = layer.output_shape(in_shape);
  Tensor r(out_shape);
  for (std::int64_t i = 0; i < r.numel(); ++i) r[i] = rng.uniform(-1, 1);

  auto loss = [&] {
    const Tensor y = layer.forward(x, true);
    float acc = 0.0F;
    for (std::int64_t i = 0; i < y.numel(); ++i) acc += y[i] * r[i];
    return acc;
  };
  loss();
  const Tensor grad = layer.backward(r);
  const float eps = 1e-2F;
  for (std::int64_t i = 0; i < x.numel(); i += 3) {
    const float saved = x[i];
    x[i] = saved + eps;
    const float fp = loss();
    x[i] = saved - eps;
    const float fm = loss();
    x[i] = saved;
    EXPECT_NEAR(grad[i], (fp - fm) / (2 * eps), 2e-2F) << "coord " << i;
  }
}

TEST(ExtraLayerGradients, Sigmoid) {
  Sigmoid layer;
  check_gradient(layer, Shape{2, 8});
}

TEST(ExtraLayerGradients, Tanh) {
  Tanh layer;
  check_gradient(layer, Shape{2, 8});
}

TEST(ExtraLayerGradients, AvgPool) {
  AvgPool2D layer(2);
  check_gradient(layer, Shape{1, 2, 4, 4});
}

TEST(AdamTest, MinimizesQuadratic) {
  Tensor w(Shape{2}, {5.0F, -3.0F});
  Tensor g(Shape{2});
  Adam::Config cfg;
  cfg.learning_rate = 0.05F;
  Adam opt({&w}, {&g}, cfg);
  for (int i = 0; i < 600; ++i) {
    g[0] = 2.0F * (w[0] - 1.0F);
    g[1] = 2.0F * (w[1] + 2.0F);
    opt.step();
  }
  EXPECT_NEAR(w[0], 1.0F, 5e-2F);
  EXPECT_NEAR(w[1], -2.0F, 5e-2F);
}

TEST(AdamTest, FirstStepIsLearningRateSized) {
  // With bias correction, |first update| == lr regardless of grad scale.
  Tensor w(Shape{1}, {0.0F});
  Tensor g(Shape{1}, {100.0F});
  Adam::Config cfg;
  cfg.learning_rate = 0.1F;
  Adam opt({&w}, {&g}, cfg);
  opt.step();
  EXPECT_NEAR(w[0], -0.1F, 1e-4F);
}

TEST(AdamTest, DecoupledWeightDecayShrinks) {
  Tensor w(Shape{1}, {10.0F});
  Tensor g(Shape{1}, {0.0F});
  Adam::Config cfg;
  cfg.learning_rate = 0.1F;
  cfg.weight_decay = 0.5F;
  Adam opt({&w}, {&g}, cfg);
  opt.step();
  EXPECT_LT(w[0], 10.0F);
}

TEST(AdamTest, RejectsMismatchedLists) {
  Tensor w(Shape{2});
  Tensor g(Shape{3});
  EXPECT_THROW(Adam({&w}, {}, {}), std::invalid_argument);
  EXPECT_THROW(Adam({&w}, {&g}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace pgmr::nn
