// Softmax, temperature scaling and cross-entropy loss tests.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"
#include "nn/softmax.h"
#include "tensor/random.h"

namespace pgmr::nn {
namespace {

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(1);
  Tensor logits(Shape{4, 7});
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    logits[i] = rng.uniform(-5.0F, 5.0F);
  }
  const Tensor p = softmax(logits);
  for (std::int64_t n = 0; n < 4; ++n) {
    float row = 0.0F;
    for (std::int64_t c = 0; c < 7; ++c) row += p.at(n, c);
    EXPECT_NEAR(row, 1.0F, 1e-5F);
  }
}

TEST(SoftmaxTest, NumericallyStableForLargeLogits) {
  const Tensor logits(Shape{1, 3}, {1000.0F, 999.0F, 998.0F});
  const Tensor p = softmax(logits);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_GT(p[0], p[1]);
  EXPECT_GT(p[1], p[2]);
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0F, 1e-5F);
}

TEST(SoftmaxTest, UniformLogitsGiveUniformProbabilities) {
  Tensor logits(Shape{1, 4});
  logits.fill(2.5F);
  const Tensor p = softmax(logits);
  for (std::int64_t c = 0; c < 4; ++c) EXPECT_NEAR(p[c], 0.25F, 1e-6F);
}

TEST(SoftmaxTest, TemperatureFlattensDistribution) {
  const Tensor logits(Shape{1, 3}, {3.0F, 1.0F, 0.0F});
  const Tensor cold = softmax_with_temperature(logits, 0.5F);
  const Tensor base = softmax(logits);
  const Tensor hot = softmax_with_temperature(logits, 4.0F);
  // Higher temperature -> lower top confidence; lower -> sharper.
  EXPECT_GT(cold.max_row(0), base.max_row(0));
  EXPECT_LT(hot.max_row(0), base.max_row(0));
  // Argmax (and therefore accuracy) is temperature-invariant.
  EXPECT_EQ(cold.argmax_row(0), base.argmax_row(0));
  EXPECT_EQ(hot.argmax_row(0), base.argmax_row(0));
}

TEST(SoftmaxTest, RejectsBadInputs) {
  const Tensor rank4(Shape{1, 1, 2, 2});
  EXPECT_THROW(softmax(rank4), std::invalid_argument);
  const Tensor ok(Shape{1, 2});
  EXPECT_THROW(softmax_with_temperature(ok, 0.0F), std::invalid_argument);
  EXPECT_THROW(softmax_with_temperature(ok, -1.0F), std::invalid_argument);
}

TEST(CrossEntropyTest, PerfectPredictionHasLowLoss) {
  const Tensor logits(Shape{1, 3}, {20.0F, 0.0F, 0.0F});
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_LT(r.loss, 1e-3F);
}

TEST(CrossEntropyTest, UniformPredictionLossIsLogC) {
  Tensor logits(Shape{2, 4});
  logits.fill(0.0F);
  const LossResult r = softmax_cross_entropy(logits, {1, 3});
  EXPECT_NEAR(r.loss, std::log(4.0F), 1e-5F);
}

TEST(CrossEntropyTest, GradientIsSoftmaxMinusOneHotOverN) {
  const Tensor logits(Shape{2, 3}, {1.0F, 2.0F, 0.5F, 0.0F, 0.0F, 0.0F});
  const Tensor p = softmax(logits);
  const LossResult r = softmax_cross_entropy(logits, {2, 0});
  EXPECT_NEAR(r.grad_logits.at(0, 0), p.at(0, 0) / 2.0F, 1e-6F);
  EXPECT_NEAR(r.grad_logits.at(0, 2), (p.at(0, 2) - 1.0F) / 2.0F, 1e-6F);
  EXPECT_NEAR(r.grad_logits.at(1, 0), (p.at(1, 0) - 1.0F) / 2.0F, 1e-6F);
  // Gradient rows sum to zero (softmax property).
  for (std::int64_t n = 0; n < 2; ++n) {
    float row = 0.0F;
    for (std::int64_t c = 0; c < 3; ++c) row += r.grad_logits.at(n, c);
    EXPECT_NEAR(row, 0.0F, 1e-6F);
  }
}

TEST(CrossEntropyTest, RejectsBadLabels) {
  const Tensor logits(Shape{2, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {0}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 3}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, -1}), std::invalid_argument);
}

}  // namespace
}  // namespace pgmr::nn
