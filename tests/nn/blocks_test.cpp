// Composite-layer semantics: Sequential, ResidualBlock, DenseBlock and the
// channel concatenation primitive.
#include "nn/blocks.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "tensor/random.h"

namespace pgmr::nn {
namespace {

std::unique_ptr<Conv2D> init_conv(std::int64_t in_c, std::int64_t out_c,
                                  std::int64_t k, std::int64_t stride,
                                  std::int64_t pad, Rng& rng) {
  auto conv = std::make_unique<Conv2D>(in_c, out_c, k, stride, pad);
  conv->init(rng);
  return conv;
}

TEST(ConcatChannelsTest, LayoutAndValues) {
  Tensor a(Shape{2, 1, 2, 2});
  Tensor b(Shape{2, 2, 2, 2});
  a.fill(1.0F);
  b.fill(2.0F);
  const Tensor c = concat_channels(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 3, 2, 2}));
  EXPECT_EQ(c.at(0, 0, 0, 0), 1.0F);
  EXPECT_EQ(c.at(0, 1, 0, 0), 2.0F);
  EXPECT_EQ(c.at(1, 2, 1, 1), 2.0F);
}

TEST(ConcatChannelsTest, RejectsIncompatibleShapes) {
  const Tensor a(Shape{2, 1, 2, 2});
  const Tensor b(Shape{2, 1, 3, 2});
  EXPECT_THROW(concat_channels(a, b), std::invalid_argument);
  const Tensor c(Shape{3, 1, 2, 2});
  EXPECT_THROW(concat_channels(a, c), std::invalid_argument);
}

TEST(SequentialTest, AppliesLayersInOrder) {
  Sequential seq;
  seq.add(std::make_unique<ReLU>());
  seq.add(std::make_unique<Flatten>());
  const Tensor x(Shape{1, 2, 2, 2}, {-1, 2, -3, 4, 5, -6, 7, -8});
  const Tensor y = seq.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({1, 8}));
  EXPECT_EQ(y[0], 0.0F);
  EXPECT_EQ(y[1], 2.0F);
}

TEST(SequentialTest, CollectsParamsFromChildren) {
  Rng rng(1);
  Sequential seq;
  seq.add(init_conv(1, 2, 3, 1, 1, rng));
  auto fc = std::make_unique<Dense>(8, 4);
  fc->init(rng);
  seq.add(std::make_unique<Flatten>());
  seq.add(std::move(fc));
  EXPECT_EQ(seq.params().size(), 4U);  // conv w+b, dense w+b
  EXPECT_EQ(seq.grads().size(), 4U);
}

TEST(SequentialTest, CostEqualsSumOfChildren) {
  Rng rng(2);
  Sequential seq;
  seq.add(init_conv(1, 2, 3, 1, 1, rng));
  seq.add(std::make_unique<ReLU>());
  const Shape in{1, 1, 4, 4};
  const CostStats total = seq.cost(in);
  const CostStats conv_only = seq.children()[0]->cost(in);
  EXPECT_GT(total.activation_bytes, conv_only.activation_bytes);
  EXPECT_EQ(total.macs, conv_only.macs);  // ReLU adds no MACs
}

TEST(ResidualBlockTest, IdentityShortcutAddsInput) {
  Rng rng(3);
  // Body: conv initialized to zero -> block output = ReLU(x + bias=0) = ReLU(x).
  auto body = std::make_unique<Sequential>();
  auto conv = std::make_unique<Conv2D>(2, 2, 3, 1, 1);
  for (Tensor* p : conv->params()) p->fill(0.0F);
  body->add(std::move(conv));
  ResidualBlock block(std::move(body), nullptr);
  Tensor x(Shape{1, 2, 3, 3});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(i % 5) - 2.0F;
  }
  const Tensor y = block.forward(x, false);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(y[i], std::max(0.0F, x[i]));
  }
}

TEST(ResidualBlockTest, ProjectionHandlesShapeChange) {
  Rng rng(4);
  auto body = std::make_unique<Sequential>();
  body->add(init_conv(2, 4, 3, 2, 1, rng));
  auto projection = init_conv(2, 4, 1, 2, 0, rng);
  ResidualBlock block(std::move(body), std::move(projection));
  const Tensor x(Shape{1, 2, 6, 6});
  EXPECT_EQ(block.output_shape(x.shape()), Shape({1, 4, 3, 3}));
  EXPECT_EQ(block.forward(x, false).shape(), Shape({1, 4, 3, 3}));
}

TEST(ResidualBlockTest, MismatchedShortcutThrows) {
  Rng rng(5);
  auto body = std::make_unique<Sequential>();
  body->add(init_conv(2, 4, 3, 1, 1, rng));  // changes channels, no projection
  ResidualBlock block(std::move(body), nullptr);
  const Tensor x(Shape{1, 2, 4, 4});
  EXPECT_THROW(block.forward(x, false), std::invalid_argument);
}

TEST(ResidualBlockTest, NullBodyRejected) {
  EXPECT_THROW(ResidualBlock(nullptr, nullptr), std::invalid_argument);
}

TEST(DenseBlockTest, OutputChannelsGrowByUnitTimesGrowth) {
  Rng rng(6);
  std::vector<std::unique_ptr<Sequential>> units;
  for (int u = 0; u < 3; ++u) {
    auto unit = std::make_unique<Sequential>();
    unit->add(init_conv(4 + u * 2, 2, 3, 1, 1, rng));
    units.push_back(std::move(unit));
  }
  DenseBlock block(std::move(units), 4, 2);
  const Shape in{2, 4, 5, 5};
  EXPECT_EQ(block.output_shape(in), Shape({2, 10, 5, 5}));
  Tensor x(in);
  x.fill(0.5F);
  const Tensor y = block.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({2, 10, 5, 5}));
  // The first `in` channels of the output are the input, untouched.
  for (std::int64_t c = 0; c < 4; ++c) {
    EXPECT_EQ(y.at(0, c, 2, 2), 0.5F);
  }
}

TEST(DenseBlockTest, RejectsEmptyOrInvalidConfig) {
  EXPECT_THROW(DenseBlock({}, 4, 2), std::invalid_argument);
  std::vector<std::unique_ptr<Sequential>> units;
  units.push_back(std::make_unique<Sequential>());
  EXPECT_THROW(DenseBlock(std::move(units), 0, 2), std::invalid_argument);
}

TEST(CompositeSaveLoadTest, DenseBlockRoundTrips) {
  Rng rng(7);
  std::vector<std::unique_ptr<Sequential>> units;
  for (int u = 0; u < 2; ++u) {
    auto unit = std::make_unique<Sequential>();
    unit->add(std::make_unique<ReLU>());
    unit->add(init_conv(3 + u * 2, 2, 3, 1, 1, rng));
    units.push_back(std::move(unit));
  }
  DenseBlock block(std::move(units), 3, 2);
  Tensor x(Shape{1, 3, 4, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-1, 1);
  const Tensor before = block.forward(x, false);

  const std::string path =
      (std::filesystem::temp_directory_path() / "pgmr_denseblock.bin").string();
  {
    BinaryWriter w(path);
    save_layer(w, block);
    w.close();
  }
  BinaryReader r(path);
  auto loaded = load_layer(r);
  std::filesystem::remove(path);
  EXPECT_EQ(loaded->kind(), "denseblock");
  EXPECT_TRUE(allclose(before, loaded->forward(x, false), 0.0F));
}

}  // namespace
}  // namespace pgmr::nn
