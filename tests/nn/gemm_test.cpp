// GEMM kernels vs. a naive triple-loop reference.
#include "nn/gemm.h"

#include <gtest/gtest.h>

#include <vector>

#include "tensor/random.h"

namespace pgmr::nn {
namespace {

std::vector<float> random_matrix(std::int64_t rows, std::int64_t cols,
                                 Rng& rng) {
  std::vector<float> m(static_cast<std::size_t>(rows * cols));
  for (float& v : m) v = rng.uniform(-1.0F, 1.0F);
  return m;
}

// Reference C[M,N] += A[M,K] B[K,N].
std::vector<float> reference(const std::vector<float>& a,
                             const std::vector<float>& b, std::int64_t m,
                             std::int64_t k, std::int64_t n) {
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0F);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0F;
      for (std::int64_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c[static_cast<std::size_t>(i * n + j)] = acc;
    }
  }
  return c;
}

void expect_close(const std::vector<float>& a, const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-4F) << "at " << i;
  }
}

struct GemmShape {
  std::int64_t m, k, n;
};

class GemmTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmTest, AccumulateMatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(1);
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0F);
  gemm_accumulate(a.data(), b.data(), c.data(), m, k, n);
  expect_close(c, reference(a, b, m, k, n));
}

TEST_P(GemmTest, AtBMatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(2);
  // A stored as [K, M]; logical operand is A^T.
  const auto a_t = random_matrix(k, m, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  for (std::int64_t p = 0; p < k; ++p) {
    for (std::int64_t i = 0; i < m; ++i) a[i * k + p] = a_t[p * m + i];
  }
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0F);
  gemm_at_b(a_t.data(), b.data(), c.data(), m, k, n);
  expect_close(c, reference(a, b, m, k, n));
}

TEST_P(GemmTest, ABtMatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(3);
  const auto a = random_matrix(m, k, rng);
  // B stored as [N, K]; logical operand is B^T.
  const auto b_t = random_matrix(n, k, rng);
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t p = 0; p < k; ++p) b[p * n + j] = b_t[j * k + p];
  }
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0F);
  gemm_a_bt(a.data(), b_t.data(), c.data(), m, k, n);
  expect_close(c, reference(a, b, m, k, n));
}

TEST(GemmTest, AccumulatesOntoExistingValues) {
  const std::vector<float> a = {1.0F, 2.0F};      // [1,2]
  const std::vector<float> b = {3.0F, 4.0F};      // [2,1]
  std::vector<float> c = {10.0F};                 // [1,1]
  gemm_accumulate(a.data(), b.data(), c.data(), 1, 2, 1);
  EXPECT_FLOAT_EQ(c[0], 10.0F + 11.0F);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmTest,
                         ::testing::Values(GemmShape{1, 1, 1},
                                           GemmShape{3, 5, 2},
                                           GemmShape{8, 8, 8},
                                           GemmShape{16, 27, 64},
                                           GemmShape{5, 1, 7},
                                           GemmShape{1, 32, 1}));

}  // namespace
}  // namespace pgmr::nn
