// Cross-validates the im2col+GEMM Conv2D against a naive direct
// convolution over randomized geometries (parameterized sweep).
#include <gtest/gtest.h>

#include "nn/conv2d.h"
#include "tensor/random.h"

namespace pgmr::nn {
namespace {

struct ConvCase {
  std::string name;
  std::int64_t batch, in_c, out_c, hw, kernel, stride, pad;
};

// Direct convolution: out[n,oc,y,x] = b[oc] + sum_{c,ky,kx} w * in.
Tensor direct_conv(const Tensor& input, const Tensor& weight,
                   const Tensor& bias, const ConvCase& c) {
  const std::int64_t oh = (c.hw + 2 * c.pad - c.kernel) / c.stride + 1;
  Tensor out(Shape{c.batch, c.out_c, oh, oh});
  for (std::int64_t n = 0; n < c.batch; ++n) {
    for (std::int64_t oc = 0; oc < c.out_c; ++oc) {
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < oh; ++x) {
          float acc = bias[oc];
          for (std::int64_t ic = 0; ic < c.in_c; ++ic) {
            for (std::int64_t ky = 0; ky < c.kernel; ++ky) {
              for (std::int64_t kx = 0; kx < c.kernel; ++kx) {
                const std::int64_t iy = y * c.stride + ky - c.pad;
                const std::int64_t ix = x * c.stride + kx - c.pad;
                if (iy < 0 || iy >= c.hw || ix < 0 || ix >= c.hw) continue;
                const float w = weight.at(
                    oc, (ic * c.kernel + ky) * c.kernel + kx);
                acc += w * input.at(n, ic, iy, ix);
              }
            }
          }
          out.at(n, oc, y, x) = acc;
        }
      }
    }
  }
  return out;
}

class ConvReferenceTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvReferenceTest, MatchesDirectConvolution) {
  const ConvCase& c = GetParam();
  Rng rng(99);
  Conv2D conv(c.in_c, c.out_c, c.kernel, c.stride, c.pad);
  conv.init(rng);
  Tensor input(Shape{c.batch, c.in_c, c.hw, c.hw});
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    input[i] = rng.uniform(-1.0F, 1.0F);
  }
  const Tensor fast = conv.forward(input, false);
  const Tensor reference =
      direct_conv(input, *conv.params()[0], *conv.params()[1], c);
  ASSERT_EQ(fast.shape(), reference.shape());
  for (std::int64_t i = 0; i < fast.numel(); ++i) {
    ASSERT_NEAR(fast[i], reference[i], 1e-4F) << c.name << " elem " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvReferenceTest,
    ::testing::Values(ConvCase{"same_3x3", 2, 3, 4, 8, 3, 1, 1},
                      ConvCase{"valid_5x5", 1, 2, 3, 9, 5, 1, 0},
                      ConvCase{"strided", 2, 4, 4, 8, 3, 2, 1},
                      ConvCase{"pointwise", 3, 5, 2, 6, 1, 1, 0},
                      ConvCase{"big_pad", 1, 1, 1, 5, 3, 1, 2},
                      ConvCase{"stride2_5x5", 1, 3, 2, 12, 5, 2, 2}),
    [](const ::testing::TestParamInfo<ConvCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace pgmr::nn
