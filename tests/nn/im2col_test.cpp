// im2col / col2im structural and adjointness tests.
#include "nn/im2col.h"

#include <gtest/gtest.h>

#include <vector>

#include "tensor/random.h"

namespace pgmr::nn {
namespace {

TEST(Im2ColTest, GeometryOutputSizes) {
  ConvGeometry g{3, 8, 8, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 8);
  EXPECT_EQ(g.out_w(), 8);
  EXPECT_EQ(g.patch_size(), 27);
  ConvGeometry strided{1, 8, 8, 3, 2, 1};
  EXPECT_EQ(strided.out_h(), 4);
  ConvGeometry valid{1, 5, 5, 3, 1, 0};
  EXPECT_EQ(valid.out_h(), 3);
}

TEST(Im2ColTest, IdentityKernelCopiesImage) {
  // 1x1 kernel, no padding: the column matrix is the image itself.
  ConvGeometry g{2, 3, 3, 1, 1, 0};
  std::vector<float> img(18);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<float>(i);
  std::vector<float> col(static_cast<std::size_t>(g.patch_size() * 9));
  im2col(img.data(), g, col.data());
  for (std::size_t i = 0; i < img.size(); ++i) EXPECT_EQ(col[i], img[i]);
}

TEST(Im2ColTest, PaddingYieldsZeros) {
  ConvGeometry g{1, 2, 2, 3, 1, 1};
  std::vector<float> img = {1.0F, 2.0F, 3.0F, 4.0F};
  std::vector<float> col(static_cast<std::size_t>(g.patch_size() * 4));
  im2col(img.data(), g, col.data());
  // The (kh=0, kw=0) row samples (y-1, x-1): all out of range for a 2x2
  // image with pad 1 except output (1,1) which reads pixel (0,0).
  EXPECT_EQ(col[0], 0.0F);
  EXPECT_EQ(col[1], 0.0F);
  EXPECT_EQ(col[2], 0.0F);
  EXPECT_EQ(col[3], 1.0F);
}

TEST(Im2ColTest, KnownPatchCenterKernel) {
  ConvGeometry g{1, 3, 3, 3, 1, 1};
  std::vector<float> img(9);
  for (std::size_t i = 0; i < 9; ++i) img[i] = static_cast<float>(i + 1);
  std::vector<float> col(static_cast<std::size_t>(g.patch_size() * 9));
  im2col(img.data(), g, col.data());
  // Row for (kh=1, kw=1) is the untouched image (center tap).
  const float* center = col.data() + 4 * 9;
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(center[i], img[i]);
  }
}

// col2im must be the exact adjoint of im2col:
// <im2col(x), y> == <x, col2im(y)> for all x, y.
TEST(Im2ColTest, Col2ImIsAdjoint) {
  const ConvGeometry geos[] = {
      {3, 6, 6, 3, 1, 1}, {2, 8, 8, 3, 2, 1}, {1, 5, 5, 2, 1, 0},
      {4, 7, 7, 5, 1, 2}};
  Rng rng(9);
  for (const ConvGeometry& g : geos) {
    const std::int64_t img_n = g.in_channels * g.in_h * g.in_w;
    const std::int64_t col_n = g.patch_size() * g.out_h() * g.out_w();
    std::vector<float> x(static_cast<std::size_t>(img_n));
    std::vector<float> y(static_cast<std::size_t>(col_n));
    for (float& v : x) v = rng.uniform(-1.0F, 1.0F);
    for (float& v : y) v = rng.uniform(-1.0F, 1.0F);

    std::vector<float> ax(static_cast<std::size_t>(col_n));
    im2col(x.data(), g, ax.data());
    std::vector<float> aty(static_cast<std::size_t>(img_n), 0.0F);
    col2im(y.data(), g, aty.data());

    double lhs = 0.0, rhs = 0.0;
    for (std::int64_t i = 0; i < col_n; ++i) lhs += ax[i] * y[i];
    for (std::int64_t i = 0; i < img_n; ++i) rhs += x[i] * aty[i];
    EXPECT_NEAR(lhs, rhs, 1e-3) << "geometry C=" << g.in_channels;
  }
}

TEST(Im2ColTest, Col2ImAccumulatesOverlaps) {
  // 2x2 image, 2x2 kernel, pad 1, stride 1 -> every input pixel is covered
  // by four patches; a column matrix of ones must scatter to 4 everywhere.
  ConvGeometry g{1, 2, 2, 2, 1, 1};
  std::vector<float> col(static_cast<std::size_t>(g.patch_size() * 9), 1.0F);
  std::vector<float> img(4, 0.0F);
  col2im(col.data(), g, img.data());
  for (float v : img) EXPECT_EQ(v, 4.0F);
}

}  // namespace
}  // namespace pgmr::nn
