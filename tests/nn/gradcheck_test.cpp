// Numerical gradient verification for every trainable layer.
//
// For a layer L, random input x and a fixed random projection R, define the
// scalar loss f(x, theta) = sum(R .* L(x; theta)). Backprop with dL/dy = R
// must then match central-difference derivatives of f in both the input and
// every parameter. This is the strongest single invariant of the nn module:
// if it holds, training converges for the right reason.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/blocks.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "tensor/random.h"

namespace pgmr::nn {
namespace {

struct LayerCase {
  std::string name;
  Shape input_shape;
  std::function<std::unique_ptr<Layer>(Rng&)> make;
};

Tensor random_tensor(const Shape& s, Rng& rng, float lo = -1.0F,
                     float hi = 1.0F) {
  Tensor t(s);
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(lo, hi);
  return t;
}

float projected_output(Layer& layer, const Tensor& x, const Tensor& r) {
  const Tensor y = layer.forward(x, /*train=*/true);
  float acc = 0.0F;
  for (std::int64_t i = 0; i < y.numel(); ++i) acc += y[i] * r[i];
  return acc;
}

class GradCheckTest : public ::testing::TestWithParam<LayerCase> {};

TEST_P(GradCheckTest, InputAndParamGradientsMatchNumeric) {
  const LayerCase& c = GetParam();
  Rng rng(31);
  auto layer = c.make(rng);
  Tensor x = random_tensor(c.input_shape, rng);
  const Shape out_shape = layer->output_shape(c.input_shape);
  const Tensor r = random_tensor(out_shape, rng);

  // Analytic gradients.
  projected_output(*layer, x, r);
  for (Tensor* g : layer->grads()) g->fill(0.0F);
  // Re-run forward so caches match the gradient accumulation below.
  projected_output(*layer, x, r);
  const Tensor grad_in = layer->backward(r);
  ASSERT_EQ(grad_in.shape(), x.shape());

  const float tol = 2e-2F;

  // Central difference at two step sizes. ReLU-style kinks make the
  // difference quotient step-size dependent; such coordinates are not
  // differentiable points and are skipped (standard gradient-checker
  // practice). Smooth coordinates must agree across steps and with the
  // analytic gradient.
  std::int64_t checked = 0;
  auto check_coord = [&](float& slot, float analytic, const char* what,
                         std::int64_t i) {
    const float saved = slot;
    auto numeric_at = [&](float eps) {
      slot = saved + eps;
      const float fp = projected_output(*layer, x, r);
      slot = saved - eps;
      const float fm = projected_output(*layer, x, r);
      slot = saved;
      return (fp - fm) / (2.0F * eps);
    };
    const float coarse = numeric_at(1e-2F);
    const float fine = numeric_at(5e-3F);
    if (std::fabs(coarse - fine) >
        0.3F * tol * std::max(1.0F, std::fabs(fine))) {
      return;  // non-smooth point (activation kink under perturbation)
    }
    ++checked;
    EXPECT_NEAR(analytic, fine, tol * std::max(1.0F, std::fabs(fine)))
        << c.name << " " << what << " coord " << i;
  };

  // Check a deterministic subset of input coordinates (all when small).
  const std::int64_t n_in = x.numel();
  const std::int64_t stride_in = std::max<std::int64_t>(1, n_in / 40);
  for (std::int64_t i = 0; i < n_in; i += stride_in) {
    check_coord(x[i], grad_in[i], "input", i);
  }

  // Check parameter gradients.
  const auto params = layer->params();
  const auto grads = layer->grads();
  ASSERT_EQ(params.size(), grads.size());
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& w = *params[p];
    const Tensor& g = *grads[p];
    const std::int64_t n_w = w.numel();
    const std::int64_t stride_w = std::max<std::int64_t>(1, n_w / 30);
    for (std::int64_t i = 0; i < n_w; i += stride_w) {
      check_coord(w[i], g[i], "param", i);
    }
  }
  // The skip rule must not have silently voided the test.
  EXPECT_GT(checked, 10) << c.name;
}

std::unique_ptr<Sequential> make_body(std::int64_t in_c, std::int64_t out_c,
                                      std::int64_t stride, Rng& rng) {
  auto body = std::make_unique<Sequential>();
  auto c1 = std::make_unique<Conv2D>(in_c, out_c, 3, stride, 1);
  c1->init(rng);
  body->add(std::move(c1));
  body->add(std::make_unique<ReLU>());
  auto c2 = std::make_unique<Conv2D>(out_c, out_c, 3, 1, 1);
  c2->init(rng);
  body->add(std::move(c2));
  return body;
}

INSTANTIATE_TEST_SUITE_P(
    Layers, GradCheckTest,
    ::testing::Values(
        LayerCase{"conv_3x3_pad", Shape{2, 3, 6, 6},
                  [](Rng& rng) {
                    auto l = std::make_unique<Conv2D>(3, 4, 3, 1, 1);
                    l->init(rng);
                    return l;
                  }},
        LayerCase{"conv_5x5_stride2", Shape{2, 2, 9, 9},
                  [](Rng& rng) {
                    auto l = std::make_unique<Conv2D>(2, 3, 5, 2, 2);
                    l->init(rng);
                    return l;
                  }},
        LayerCase{"conv_1x1", Shape{2, 4, 4, 4},
                  [](Rng& rng) {
                    auto l = std::make_unique<Conv2D>(4, 2, 1, 1, 0);
                    l->init(rng);
                    return l;
                  }},
        LayerCase{"dense", Shape{3, 10},
                  [](Rng& rng) {
                    auto l = std::make_unique<Dense>(10, 7);
                    l->init(rng);
                    return l;
                  }},
        LayerCase{"relu", Shape{2, 3, 4, 4},
                  [](Rng&) { return std::make_unique<ReLU>(); }},
        LayerCase{"maxpool2", Shape{2, 3, 6, 6},
                  [](Rng&) { return std::make_unique<MaxPool2D>(2); }},
        LayerCase{"globalavgpool", Shape{2, 5, 4, 4},
                  [](Rng&) { return std::make_unique<GlobalAvgPool>(); }},
        LayerCase{"flatten", Shape{2, 3, 4, 4},
                  [](Rng&) { return std::make_unique<Flatten>(); }},
        LayerCase{"batchnorm_4d", Shape{4, 3, 5, 5},
                  [](Rng&) { return std::make_unique<BatchNorm>(3); }},
        LayerCase{"batchnorm_2d", Shape{6, 5},
                  [](Rng&) { return std::make_unique<BatchNorm>(5); }},
        LayerCase{"sequential_conv_relu_dense", Shape{2, 2, 4, 4},
                  [](Rng& rng) {
                    auto seq = std::make_unique<Sequential>();
                    auto conv = std::make_unique<Conv2D>(2, 3, 3, 1, 1);
                    conv->init(rng);
                    seq->add(std::move(conv));
                    seq->add(std::make_unique<ReLU>());
                    seq->add(std::make_unique<Flatten>());
                    auto fc = std::make_unique<Dense>(3 * 4 * 4, 5);
                    fc->init(rng);
                    seq->add(std::move(fc));
                    return seq;
                  }},
        LayerCase{"residual_identity", Shape{2, 3, 4, 4},
                  [](Rng& rng) {
                    return std::make_unique<ResidualBlock>(
                        make_body(3, 3, 1, rng), nullptr);
                  }},
        LayerCase{"residual_projection", Shape{2, 2, 6, 6},
                  [](Rng& rng) {
                    auto proj = std::make_unique<Conv2D>(2, 4, 1, 2, 0);
                    proj->init(rng);
                    return std::make_unique<ResidualBlock>(
                        make_body(2, 4, 2, rng), std::move(proj));
                  }},
        LayerCase{"denseblock", Shape{2, 3, 4, 4},
                  [](Rng& rng) {
                    std::vector<std::unique_ptr<Sequential>> units;
                    for (int u = 0; u < 2; ++u) {
                      auto unit = std::make_unique<Sequential>();
                      auto conv = std::make_unique<Conv2D>(3 + u * 2, 2, 3, 1, 1);
                      conv->init(rng);
                      unit->add(std::make_unique<ReLU>());
                      unit->add(std::move(conv));
                      units.push_back(std::move(unit));
                    }
                    return std::make_unique<DenseBlock>(std::move(units), 3, 2);
                  }}),
    [](const ::testing::TestParamInfo<LayerCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace pgmr::nn
