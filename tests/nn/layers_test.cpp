// Forward-semantics unit tests for individual layers.
#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "tensor/random.h"

namespace pgmr::nn {
namespace {

TEST(ReLUTest, ClampsNegatives) {
  ReLU relu;
  const Tensor x(Shape{1, 4}, {-1.0F, 0.0F, 0.5F, 2.0F});
  const Tensor y = relu.forward(x, false);
  EXPECT_EQ(y[0], 0.0F);
  EXPECT_EQ(y[1], 0.0F);
  EXPECT_EQ(y[2], 0.5F);
  EXPECT_EQ(y[3], 2.0F);
}

TEST(MaxPoolTest, PicksWindowMaxima) {
  MaxPool2D pool(2);
  Tensor x(Shape{1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  const Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  EXPECT_EQ(y[0], 5.0F);
  EXPECT_EQ(y[1], 7.0F);
  EXPECT_EQ(y[2], 13.0F);
  EXPECT_EQ(y[3], 15.0F);
}

TEST(MaxPoolTest, RejectsIndivisibleInput) {
  MaxPool2D pool(2);
  const Tensor x(Shape{1, 1, 5, 4});
  EXPECT_THROW(pool.forward(x, false), std::invalid_argument);
}

TEST(MaxPoolTest, BackwardRoutesToArgmaxOnly) {
  MaxPool2D pool(2);
  Tensor x(Shape{1, 1, 2, 2}, {1.0F, 4.0F, 2.0F, 3.0F});
  pool.forward(x, true);
  const Tensor dy(Shape{1, 1, 1, 1}, {5.0F});
  const Tensor dx = pool.backward(dy);
  EXPECT_EQ(dx[0], 0.0F);
  EXPECT_EQ(dx[1], 5.0F);  // the max (4.0) gets the whole gradient
  EXPECT_EQ(dx[2], 0.0F);
  EXPECT_EQ(dx[3], 0.0F);
}

TEST(GlobalAvgPoolTest, AveragesPlanes) {
  GlobalAvgPool pool;
  Tensor x(Shape{1, 2, 2, 2});
  for (std::int64_t i = 0; i < 4; ++i) x[i] = 2.0F;       // channel 0
  for (std::int64_t i = 4; i < 8; ++i) x[i] = static_cast<float>(i);  // 4..7
  const Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.0F);
  EXPECT_FLOAT_EQ(y[1], 5.5F);
}

TEST(FlattenTest, ReshapesAndRestores) {
  Flatten flatten;
  Tensor x(Shape{2, 3, 2, 2});
  const Tensor y = flatten.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({2, 12}));
  const Tensor dx = flatten.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(DropoutTest, IdentityAtInference) {
  Dropout dropout(0.5F, 1);
  Tensor x(Shape{1, 100});
  x.fill(1.0F);
  const Tensor y = dropout.forward(x, false);
  EXPECT_TRUE(allclose(x, y, 0.0F));
}

TEST(DropoutTest, DropsAndRescalesInTraining) {
  Dropout dropout(0.5F, 1);
  Tensor x(Shape{1, 2000});
  x.fill(1.0F);
  const Tensor y = dropout.forward(x, true);
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0F) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.0F);  // 1 / (1 - 0.5)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 2000.0, 0.5, 0.05);
}

TEST(DropoutTest, RejectsInvalidProbability) {
  EXPECT_THROW(Dropout(-0.1F, 1), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0F, 1), std::invalid_argument);
}

TEST(Conv2DTest, KnownConvolution) {
  // Single 2x2 input, 2x2 kernel of ones, no padding: output = sum.
  Conv2D conv(1, 1, 2, 1, 0);
  for (Tensor* p : conv.params()) p->fill(0.0F);
  conv.params()[0]->fill(1.0F);
  const Tensor x(Shape{1, 1, 2, 2}, {1.0F, 2.0F, 3.0F, 4.0F});
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 10.0F);
}

TEST(Conv2DTest, BiasIsAdded) {
  Conv2D conv(1, 2, 1, 1, 0);
  conv.params()[0]->fill(0.0F);   // weights
  (*conv.params()[1])[0] = 3.0F;  // bias channel 0
  (*conv.params()[1])[1] = -1.0F;
  const Tensor x(Shape{1, 1, 2, 2});
  const Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 3.0F);
  EXPECT_FLOAT_EQ(y.at(0, 1, 1, 1), -1.0F);
}

TEST(Conv2DTest, RejectsWrongChannelCount) {
  Conv2D conv(3, 4, 3, 1, 1);
  const Tensor x(Shape{1, 2, 8, 8});
  EXPECT_THROW(conv.forward(x, false), std::invalid_argument);
}

TEST(Conv2DTest, CostCountsMacs) {
  Conv2D conv(3, 8, 3, 1, 1);
  const CostStats s = conv.cost(Shape{1, 3, 16, 16});
  EXPECT_EQ(s.macs, 8 * 16 * 16 * 27);
  EXPECT_EQ(s.param_count, 8 * 27 + 8);
}

TEST(DenseTest, KnownAffine) {
  Dense dense(2, 2);
  Tensor& w = *dense.params()[0];
  w.at(0, 0) = 1.0F;
  w.at(0, 1) = 2.0F;
  w.at(1, 0) = -1.0F;
  w.at(1, 1) = 0.5F;
  (*dense.params()[1])[0] = 1.0F;
  const Tensor x(Shape{1, 2}, {3.0F, 4.0F});
  const Tensor y = dense.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.0F + 8.0F + 1.0F);
  EXPECT_FLOAT_EQ(y.at(0, 1), -3.0F + 2.0F);
}

TEST(BatchNormTest, NormalizesBatchStatistics) {
  BatchNorm bn(2);
  Rng rng(5);
  Tensor x(Shape{64, 2});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = rng.normal(3.0F, 2.0F);
  }
  const Tensor y = bn.forward(x, true);
  // Per-feature mean ~0, variance ~1 after normalization (gamma=1, beta=0).
  for (std::int64_t f = 0; f < 2; ++f) {
    double mean = 0.0, var = 0.0;
    for (std::int64_t n = 0; n < 64; ++n) mean += y.at(n, f);
    mean /= 64.0;
    for (std::int64_t n = 0; n < 64; ++n) {
      var += (y.at(n, f) - mean) * (y.at(n, f) - mean);
    }
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, InferenceUsesRunningStats) {
  BatchNorm bn(1);
  Tensor x(Shape{8, 1});
  for (std::int64_t i = 0; i < 8; ++i) x[i] = static_cast<float>(i);
  // Accumulate running stats over several passes.
  for (int i = 0; i < 50; ++i) bn.forward(x, true);
  const Tensor y = bn.forward(x, false);
  // Inference output should also be roughly normalized (same batch).
  double mean = 0.0;
  for (std::int64_t i = 0; i < 8; ++i) mean += y[i];
  EXPECT_NEAR(mean / 8.0, 0.0, 0.1);
}

TEST(BatchNormTest, RejectsWrongChannels) {
  BatchNorm bn(3);
  const Tensor x(Shape{2, 4, 2, 2});
  EXPECT_THROW(bn.forward(x, true), std::invalid_argument);
}

}  // namespace
}  // namespace pgmr::nn
