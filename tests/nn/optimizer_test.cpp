// SGD optimizer unit tests.
#include "nn/optimizer.h"

#include <gtest/gtest.h>

namespace pgmr::nn {
namespace {

TEST(SGDTest, PlainGradientStep) {
  Tensor w(Shape{2}, {1.0F, -2.0F});
  Tensor g(Shape{2}, {0.5F, -0.5F});
  SGD::Config cfg;
  cfg.learning_rate = 0.1F;
  cfg.momentum = 0.0F;
  cfg.weight_decay = 0.0F;
  SGD opt({&w}, {&g}, cfg);
  opt.step();
  EXPECT_FLOAT_EQ(w[0], 1.0F - 0.1F * 0.5F);
  EXPECT_FLOAT_EQ(w[1], -2.0F + 0.1F * 0.5F);
}

TEST(SGDTest, MomentumAccumulates) {
  Tensor w(Shape{1}, {0.0F});
  Tensor g(Shape{1}, {1.0F});
  SGD::Config cfg;
  cfg.learning_rate = 1.0F;
  cfg.momentum = 0.5F;
  cfg.weight_decay = 0.0F;
  SGD opt({&w}, {&g}, cfg);
  opt.step();  // v = -1,    w = -1
  EXPECT_FLOAT_EQ(w[0], -1.0F);
  opt.step();  // v = -1.5,  w = -2.5
  EXPECT_FLOAT_EQ(w[0], -2.5F);
}

TEST(SGDTest, WeightDecayShrinksWeights) {
  Tensor w(Shape{1}, {10.0F});
  Tensor g(Shape{1}, {0.0F});
  SGD::Config cfg;
  cfg.learning_rate = 0.1F;
  cfg.momentum = 0.0F;
  cfg.weight_decay = 0.5F;
  SGD opt({&w}, {&g}, cfg);
  opt.step();
  EXPECT_FLOAT_EQ(w[0], 10.0F - 0.1F * 0.5F * 10.0F);
}

TEST(SGDTest, ZeroGradClearsGradients) {
  Tensor w(Shape{2});
  Tensor g(Shape{2}, {1.0F, 2.0F});
  SGD opt({&w}, {&g}, {});
  opt.zero_grad();
  EXPECT_EQ(g[0], 0.0F);
  EXPECT_EQ(g[1], 0.0F);
}

TEST(SGDTest, LearningRateOverride) {
  Tensor w(Shape{1}, {1.0F});
  Tensor g(Shape{1}, {1.0F});
  SGD::Config cfg;
  cfg.learning_rate = 0.1F;
  cfg.momentum = 0.0F;
  SGD opt({&w}, {&g}, cfg);
  opt.set_learning_rate(0.01F);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.01F);
  opt.step();
  EXPECT_FLOAT_EQ(w[0], 1.0F - 0.01F);
}

TEST(SGDTest, RejectsMismatchedLists) {
  Tensor w(Shape{2});
  Tensor g(Shape{3});
  EXPECT_THROW(SGD({&w}, {}, {}), std::invalid_argument);
  EXPECT_THROW(SGD({&w}, {&g}, {}), std::invalid_argument);
}

TEST(SGDTest, MinimizesQuadratic) {
  // f(w) = (w - 3)^2; gradient = 2(w - 3). Converges to 3.
  Tensor w(Shape{1}, {-5.0F});
  Tensor g(Shape{1});
  SGD::Config cfg;
  cfg.learning_rate = 0.1F;
  cfg.momentum = 0.9F;
  SGD opt({&w}, {&g}, cfg);
  for (int i = 0; i < 200; ++i) {
    g[0] = 2.0F * (w[0] - 3.0F);
    opt.step();
  }
  EXPECT_NEAR(w[0], 3.0F, 1e-2F);
}

}  // namespace
}  // namespace pgmr::nn
