// Architecture tests for the six zoo models.
#include "zoo/models.h"

#include <gtest/gtest.h>

#include <functional>

namespace pgmr::zoo {
namespace {

struct ModelCase {
  std::string name;
  InputSpec input;
  std::function<nn::Network(const InputSpec&, Rng&)> make;
};

class ModelTest : public ::testing::TestWithParam<ModelCase> {};

TEST_P(ModelTest, ForwardProducesLogitsPerClass) {
  const ModelCase& c = GetParam();
  Rng rng(5);
  nn::Network net = c.make(c.input, rng);
  const Shape in{2, c.input.channels, c.input.size, c.input.size};
  EXPECT_EQ(net.output_shape(in), Shape({2, c.input.classes}));

  Tensor x(in);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = rng.uniform(0.0F, 1.0F);
  }
  const Tensor logits = net.forward(x);
  EXPECT_EQ(logits.shape(), Shape({2, c.input.classes}));
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    EXPECT_FALSE(std::isnan(logits[i])) << c.name;
  }
}

TEST_P(ModelTest, HasTrainableParameters) {
  const ModelCase& c = GetParam();
  Rng rng(6);
  nn::Network net = c.make(c.input, rng);
  const auto params = net.params();
  const auto grads = net.grads();
  EXPECT_EQ(params.size(), grads.size());
  EXPECT_GT(params.size(), 2U);
  std::int64_t total = 0;
  for (const Tensor* p : params) total += p->numel();
  EXPECT_GT(total, 100) << c.name;
}

TEST_P(ModelTest, CostPositiveAndDeterministic) {
  const ModelCase& c = GetParam();
  Rng rng(7);
  const nn::Network net = c.make(c.input, rng);
  const Shape in{1, c.input.channels, c.input.size, c.input.size};
  const nn::CostStats s = net.cost(in);
  EXPECT_GT(s.macs, 0) << c.name;
  EXPECT_GT(s.weight_bytes, 0);
  EXPECT_GT(s.activation_bytes, 0);
  EXPECT_EQ(net.cost(in).macs, s.macs);
}

TEST_P(ModelTest, BackwardRunsAfterTrainForward) {
  const ModelCase& c = GetParam();
  Rng rng(8);
  nn::Network net = c.make(c.input, rng);
  Tensor x(Shape{2, c.input.channels, c.input.size, c.input.size});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = rng.uniform(0.0F, 1.0F);
  }
  const Tensor logits = net.forward(x, /*train=*/true);
  Tensor grad(logits.shape());
  grad.fill(0.01F);
  const Tensor grad_in = net.backward(grad);
  EXPECT_EQ(grad_in.shape(), x.shape());
}

TEST_P(ModelTest, DifferentSeedsGiveDifferentModels) {
  const ModelCase& c = GetParam();
  Rng rng_a(1), rng_b(2);
  nn::Network a = c.make(c.input, rng_a);
  nn::Network b = c.make(c.input, rng_b);
  Tensor x(Shape{1, c.input.channels, c.input.size, c.input.size});
  Rng rng(3);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = rng.uniform(0.0F, 1.0F);
  }
  EXPECT_FALSE(allclose(a.forward(x), b.forward(x), 1e-4F)) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ModelTest,
    ::testing::Values(
        ModelCase{"lenet5", InputSpec{1, 16, 10}, make_lenet5},
        ModelCase{"convnet", InputSpec{3, 16, 10}, make_convnet},
        ModelCase{"resnet20", InputSpec{3, 16, 10}, make_resnet20},
        ModelCase{"densenet", InputSpec{3, 16, 10}, make_densenet},
        ModelCase{"alexnet", InputSpec{3, 24, 20}, make_alexnet},
        ModelCase{"resnet34", InputSpec{3, 24, 20}, make_resnet34}),
    [](const ::testing::TestParamInfo<ModelCase>& info) {
      return info.param.name;
    });

TEST(ModelDepthTest, ResNet34IsDeeperThanResNet20Lite) {
  Rng rng(9);
  const InputSpec cifar{3, 16, 10};
  const InputSpec imagenet{3, 24, 20};
  nn::Network r20 = make_resnet20(cifar, rng);
  nn::Network r34 = make_resnet34(imagenet, rng);
  const std::int64_t macs20 = r20.cost(Shape{1, 3, 16, 16}).macs;
  const std::int64_t macs34 = r34.cost(Shape{1, 3, 24, 24}).macs;
  EXPECT_GT(macs34, macs20);
}

TEST(ModelCostTest, DenseNetCostsMoreThanConvNet) {
  // Mirrors the paper's ResNet20-vs-DenseNet40 cost discussion: richer
  // connectivity costs more MACs on the same input.
  Rng rng(10);
  const InputSpec cifar{3, 16, 10};
  nn::Network convnet = make_convnet(cifar, rng);
  nn::Network densenet = make_densenet(cifar, rng);
  EXPECT_GT(densenet.cost(Shape{1, 3, 16, 16}).macs,
            convnet.cost(Shape{1, 3, 16, 16}).macs);
}

}  // namespace
}  // namespace pgmr::zoo
