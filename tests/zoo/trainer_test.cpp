// Training-loop tests on small synthetic corpora.
#include "zoo/trainer.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "zoo/models.h"

namespace pgmr::zoo {
namespace {

data::DatasetSplits easy_splits() {
  data::SyntheticSpec spec;
  spec.channels = 1;
  spec.size = 16;
  spec.num_classes = 4;
  spec.count = 700;
  spec.seed = 77;
  spec.noise_std = 0.02F;
  spec.jitter = 0.3F;
  const data::Dataset full = data::generate_synthetic(spec);
  return data::split_dataset(full, 500, 100, 100);
}

TEST(TrainerTest, LossDecreasesAndAccuracyBeatsChance) {
  const data::DatasetSplits splits = easy_splits();
  Rng rng(1);
  nn::Network net = make_lenet5(InputSpec{1, 16, 4}, rng);
  const double before = accuracy(net, splits.test);

  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.learning_rate = 0.05F;
  const float first_loss = train_network(net, splits.train, cfg);
  cfg.epochs = 4;
  const float later_loss = train_network(net, splits.train, cfg);
  EXPECT_LT(later_loss, first_loss);

  const double after = accuracy(net, splits.test);
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.8);  // easy 4-class corpus
}

TEST(TrainerTest, TrainingIsDeterministicGivenSeeds) {
  const data::DatasetSplits splits = easy_splits();
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.shuffle_seed = 9;

  Rng rng_a(3);
  nn::Network a = make_lenet5(InputSpec{1, 16, 4}, rng_a);
  train_network(a, splits.train, cfg);

  Rng rng_b(3);
  nn::Network b = make_lenet5(InputSpec{1, 16, 4}, rng_b);
  train_network(b, splits.train, cfg);

  const Tensor pa = probabilities_on(a, splits.test);
  const Tensor pb = probabilities_on(b, splits.test);
  EXPECT_TRUE(allclose(pa, pb, 0.0F));
}

TEST(TrainerTest, LogitsOnCoversWholeDatasetInBatches) {
  const data::DatasetSplits splits = easy_splits();
  Rng rng(4);
  nn::Network net = make_lenet5(InputSpec{1, 16, 4}, rng);
  const Tensor big_batches = logits_on(net, splits.test, 64);
  const Tensor small_batches = logits_on(net, splits.test, 7);
  EXPECT_EQ(big_batches.shape(), Shape({100, 4}));
  EXPECT_TRUE(allclose(big_batches, small_batches, 1e-5F));
}

TEST(TrainerTest, ProbabilitiesOnNormalized) {
  const data::DatasetSplits splits = easy_splits();
  Rng rng(5);
  nn::Network net = make_lenet5(InputSpec{1, 16, 4}, rng);
  const Tensor probs = probabilities_on(net, splits.test);
  for (std::int64_t n = 0; n < probs.shape()[0]; ++n) {
    float row = 0.0F;
    for (std::int64_t c = 0; c < probs.shape()[1]; ++c) {
      row += probs.at(n, c);
    }
    EXPECT_NEAR(row, 1.0F, 1e-4F);
  }
}

TEST(TrainerTest, LrDecayLowersRate) {
  // Indirect check: a decayed schedule must still converge; and epochs= 0
  // leaves the model untouched.
  const data::DatasetSplits splits = easy_splits();
  Rng rng(6);
  nn::Network net = make_lenet5(InputSpec{1, 16, 4}, rng);
  TrainConfig cfg;
  cfg.epochs = 0;
  const Tensor before = probabilities_on(net, splits.test);
  train_network(net, splits.train, cfg);
  EXPECT_TRUE(allclose(before, probabilities_on(net, splits.test), 0.0F));
}

}  // namespace
}  // namespace pgmr::zoo
