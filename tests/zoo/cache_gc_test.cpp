// Cache garbage collection: prune_cache must delete exactly the *.net
// files no reader version can parse (foreign contents, truncated header,
// unknown version — e.g. the old epoch-timestamp seed archives) while
// keeping readable archives, legacy archives, rotted-payload archives
// (the zoo self-heals those at load time) and non-archive files.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stop_token>
#include <string>
#include <vector>

#include "nn/dense.h"
#include "nn/pooling.h"
#include "zoo/zoo.h"

namespace pgmr::zoo {
namespace {

namespace fs = std::filesystem;

nn::Network tiny_net() {
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(std::make_unique<nn::Flatten>());
  layers.push_back(std::make_unique<nn::Dense>(2, 2));
  return nn::Network("tiny", std::move(layers));
}

void write_bytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// First `n` bytes of an existing file — used to craft a truncated copy.
std::string head_of(const fs::path& path, std::size_t n) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes(n, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(n));
  bytes.resize(static_cast<std::size_t>(in.gcount()));
  return bytes;
}

class CacheGcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pgmr_cache_gc_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
};

TEST_F(CacheGcTest, PrunesOnlyIrrecoverableArchives) {
  // Readable, current-version archive: kept.
  const fs::path valid = dir_ / "lenet5_ORG_v0_c3.net";
  tiny_net().save(valid.string());

  // The classic junk this GC exists for: an epoch-timestamp "archive"
  // holding something that was never a PGMR file. Pruned.
  const fs::path epoch_junk = dir_ / "1699999999.net";
  write_bytes(epoch_junk, "not a pgmr archive at all");

  // Truncated before the version field: no reader can even open it. Pruned.
  const fs::path truncated_header = dir_ / "lenet5_Hist_v0_c3.net";
  write_bytes(truncated_header, head_of(valid, 6));

  // Valid 8-byte header, payload cut off: a reader understands the format,
  // so load-time self-heal owns it (retrain + republish). Kept.
  const fs::path rotted_payload = dir_ / "lenet5_FlipX_v0_c3.net";
  write_bytes(rotted_payload, head_of(valid, 16));

  // In-flight atomic publish and unrelated files: never touched.
  const fs::path tmp_publish = dir_ / "lenet5_ORG_v0_c3.net.tmp.12345";
  write_bytes(tmp_publish, "partial");
  const fs::path readme = dir_ / "README.txt";
  write_bytes(readme, "hello");

  const CachePruneReport report = prune_cache(dir_.string());
  EXPECT_EQ(report.scanned, 4);
  EXPECT_EQ(report.pruned, 2);
  EXPECT_EQ(report.kept, 2);

  EXPECT_TRUE(fs::exists(valid));
  EXPECT_TRUE(fs::exists(rotted_payload));
  EXPECT_TRUE(fs::exists(tmp_publish));
  EXPECT_TRUE(fs::exists(readme));
  EXPECT_FALSE(fs::exists(epoch_junk));
  EXPECT_FALSE(fs::exists(truncated_header));
}

TEST_F(CacheGcTest, LegacyVersionArchivesAreKept) {
  // Hand-craft a v1 header (magic "PGMR" little-endian + version 1): the
  // legacy reader understands it, so migrate_cache — not the GC — owns it.
  const fs::path legacy = dir_ / "legacy_v1.net";
  const std::uint32_t magic = 0x50474D52, version = 1;
  std::string bytes(8, '\0');
  std::memcpy(bytes.data(), &magic, 4);
  std::memcpy(bytes.data() + 4, &version, 4);
  write_bytes(legacy, bytes);

  const CachePruneReport report = prune_cache(dir_.string());
  EXPECT_EQ(report.scanned, 1);
  EXPECT_EQ(report.pruned, 0);
  EXPECT_EQ(report.kept, 1);
  EXPECT_TRUE(fs::exists(legacy));

  // An unknown future version has no reader: pruned.
  const fs::path future = dir_ / "future_v9.net";
  const std::uint32_t v9 = 9;
  std::memcpy(bytes.data() + 4, &v9, 4);
  write_bytes(future, bytes);
  const CachePruneReport again = prune_cache(dir_.string());
  EXPECT_EQ(again.pruned, 1);
  EXPECT_FALSE(fs::exists(future));
  EXPECT_TRUE(fs::exists(legacy));
}

TEST_F(CacheGcTest, MissingDirectoryIsANoOp) {
  const CachePruneReport report =
      prune_cache((dir_ / "never_created").string());
  EXPECT_EQ(report.scanned, 0);
  EXPECT_EQ(report.pruned, 0);
  EXPECT_EQ(report.kept, 0);
}

TEST_F(CacheGcTest, ZooScanPrunesJunkBeforeTraining) {
  // trained_network's first touch of a cache dir runs the GC: junk left by
  // an older run disappears even though nobody called prune_cache.
  const fs::path junk = dir_ / "1700000001.net";
  write_bytes(junk, "garbage");
  ::setenv("PGMR_CACHE_DIR", dir_.string().c_str(), 1);
  const Benchmark& bm = find_benchmark("lenet5");
  // A cancelled run is the cheapest way through the scan path: it prunes,
  // then bails out before training or publishing anything.
  std::stop_source cancelled;
  cancelled.request_stop();
  EXPECT_FALSE(
      trained_network(bm, "ORG", 0, cancelled.get_token()).has_value());
  ::unsetenv("PGMR_CACHE_DIR");
  EXPECT_FALSE(fs::exists(junk));
}

}  // namespace
}  // namespace pgmr::zoo
