// Zoo registry and cache tests. Tests that need a trained model share the
// repository-level cache (PGMR_TEST_CACHE_DIR, set by CMake) so they reuse
// the prewarmed weights; training is deterministic either way.
#include "zoo/zoo.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

namespace pgmr::zoo {
namespace {

class ZooCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef PGMR_TEST_CACHE_DIR
    ::setenv("PGMR_CACHE_DIR", PGMR_TEST_CACHE_DIR, /*overwrite=*/0);
#endif
  }
};

TEST(ZooRegistryTest, AllSixPaperBenchmarksPresent) {
  const auto& all = all_benchmarks();
  ASSERT_EQ(all.size(), 6U);
  EXPECT_EQ(all[0].id, "lenet5");
  EXPECT_EQ(all[0].dataset_id, "smnist");
  EXPECT_EQ(all[1].id, "convnet");
  EXPECT_EQ(all[2].id, "resnet20");
  EXPECT_EQ(all[3].id, "densenet40");
  EXPECT_EQ(all[3].dataset_id, "scifar");
  EXPECT_EQ(all[4].id, "alexnet");
  EXPECT_EQ(all[5].id, "resnet34");
  EXPECT_EQ(all[5].dataset_id, "simagenet");
}

TEST(ZooRegistryTest, FindBenchmarkByIdOrThrow) {
  EXPECT_EQ(find_benchmark("convnet").dataset_id, "scifar");
  EXPECT_THROW(find_benchmark("vgg16"), std::invalid_argument);
}

TEST(ZooRegistryTest, SplitsAreDeterministicAndSized) {
  const Benchmark& bm = find_benchmark("convnet");
  const data::DatasetSplits a = benchmark_splits(bm);
  const data::DatasetSplits b = benchmark_splits(bm);
  EXPECT_EQ(a.val.size(), 1000);
  EXPECT_EQ(a.test.size(), 1000);
  EXPECT_GT(a.train.size(), 2000);
  EXPECT_TRUE(allclose(a.test.images, b.test.images, 0.0F));
  EXPECT_EQ(a.train.num_classes, 10);
}

TEST(ZooRegistryTest, TrainValTestAreDisjointByConstruction) {
  // Slices of a single generated corpus: verify boundaries by comparing
  // the first test sample against every train sample (all differ).
  const data::DatasetSplits s = benchmark_splits(find_benchmark("lenet5"));
  const Tensor probe = s.test.sample(0);
  int matches = 0;
  for (std::int64_t i = 0; i < s.train.size(); ++i) {
    if (allclose(probe, s.train.sample(i), 1e-7F)) ++matches;
  }
  EXPECT_EQ(matches, 0);
}

TEST(ZooRegistryTest, CandidatePoolsParseable) {
  for (const Benchmark& bm : all_benchmarks()) {
    const auto pool = candidate_pool(bm);
    EXPECT_GE(pool.size(), 5U) << bm.id;
    for (const std::string& spec : pool) {
      EXPECT_NO_THROW(prep::make_preprocessor(spec)) << spec;
    }
  }
}

TEST_F(ZooCacheTest, TrainedNetworkIsCachedAndDeterministic) {
  const Benchmark& bm = find_benchmark("lenet5");
  nn::Network first = trained_network(bm, "ORG");

  // Second call must hit the cache and agree bit-for-bit.
  const auto t0 = std::chrono::steady_clock::now();
  nn::Network second = trained_network(bm, "ORG");
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(secs, 1.0);  // load, not a retrain

  const data::DatasetSplits splits = benchmark_splits(bm);
  const data::Dataset probe = splits.test.slice(0, 32);
  EXPECT_TRUE(allclose(probabilities_on(first, probe),
                       probabilities_on(second, probe), 0.0F));
}

TEST_F(ZooCacheTest, VariantsProduceDistinctNetworks) {
  const Benchmark& bm = find_benchmark("lenet5");
  nn::Network v0 = trained_network(bm, "ORG", 0);
  nn::Network v1 = trained_network(bm, "ORG", 1);
  const data::DatasetSplits splits = benchmark_splits(bm);
  const data::Dataset probe = splits.test.slice(0, 64);
  EXPECT_FALSE(allclose(probabilities_on(v0, probe),
                        probabilities_on(v1, probe), 1e-4F));
}

TEST_F(ZooCacheTest, TrainedBaselineBeatsChanceComfortably) {
  const Benchmark& bm = find_benchmark("lenet5");
  nn::Network net = trained_network(bm, "ORG");
  const data::DatasetSplits splits = benchmark_splits(bm);
  EXPECT_GT(accuracy(net, splits.test), 0.9);
}

TEST_F(ZooCacheTest, MakeEnsembleWiresPreprocessors) {
  const Benchmark& bm = find_benchmark("lenet5");
  mr::Ensemble e = make_ensemble(bm, {"ORG", "FlipX"});
  ASSERT_EQ(e.size(), 2U);
  EXPECT_EQ(e.member(0).prep_name(), "ORG");
  EXPECT_EQ(e.member(1).prep_name(), "FlipX");
  EXPECT_EQ(e.member(0).bits(), 32);
}

TEST_F(ZooCacheTest, MakeRandomInitEnsembleUsesVariants) {
  const Benchmark& bm = find_benchmark("lenet5");
  mr::Ensemble e = make_random_init_ensemble(bm, 2);
  ASSERT_EQ(e.size(), 2U);
  EXPECT_EQ(e.member(0).prep_name(), "ORG");
  EXPECT_EQ(e.member(1).prep_name(), "ORG");
  // Different variants -> different behaviour on some inputs.
  const data::DatasetSplits splits = benchmark_splits(bm);
  const data::Dataset probe = splits.test.slice(0, 64);
  const auto probs = e.member_probabilities(probe.images);
  EXPECT_FALSE(allclose(probs[0], probs[1], 1e-4F));
}

}  // namespace
}  // namespace pgmr::zoo
