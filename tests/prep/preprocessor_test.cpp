// Preprocessor pool tests (paper Table I + Scale).
#include "prep/preprocessor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/random.h"

namespace pgmr::prep {
namespace {

Tensor random_batch(std::int64_t n, std::int64_t c, std::int64_t hw,
                    std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(Shape{n, c, hw, hw});
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(0.0F, 1.0F);
  return t;
}

// --- Properties that must hold for EVERY preprocessor in the pool. ---

class PoolPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PoolPropertyTest, PreservesShape) {
  const auto prep = make_preprocessor(GetParam());
  const Tensor in = random_batch(3, 3, 16, 1);
  const Tensor out = prep->apply(in);
  EXPECT_EQ(out.shape(), in.shape());
}

TEST_P(PoolPropertyTest, StaysInUnitRange) {
  const auto prep = make_preprocessor(GetParam());
  const Tensor out = prep->apply(random_batch(2, 3, 16, 2));
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_GE(out[i], -1e-5F);
    EXPECT_LE(out[i], 1.0F + 1e-5F);
  }
}

TEST_P(PoolPropertyTest, DeterministicTransform) {
  const auto prep = make_preprocessor(GetParam());
  const Tensor in = random_batch(2, 3, 16, 3);
  EXPECT_TRUE(allclose(prep->apply(in), prep->apply(in), 0.0F));
}

TEST_P(PoolPropertyTest, NameRoundTripsThroughFactory) {
  const auto prep = make_preprocessor(GetParam());
  EXPECT_EQ(prep->name(), GetParam());
  // Names printed by instances must be re-parseable.
  const auto again = make_preprocessor(prep->name());
  const Tensor in = random_batch(1, 3, 16, 4);
  EXPECT_TRUE(allclose(prep->apply(in), again->apply(in), 0.0F));
}

TEST_P(PoolPropertyTest, PerImageIndependence) {
  // Transforming a batch equals transforming each image separately.
  const auto prep = make_preprocessor(GetParam());
  const Tensor batch = random_batch(3, 3, 16, 5);
  const Tensor whole = prep->apply(batch);
  for (std::int64_t i = 0; i < 3; ++i) {
    const Tensor single = prep->apply(batch.slice_sample(i));
    EXPECT_TRUE(allclose(single, whole.slice_sample(i), 1e-6F))
        << GetParam() << " sample " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(StandardPool, PoolPropertyTest,
                         ::testing::ValuesIn(standard_pool()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- Transform-specific semantics. ---

TEST(FlipTest, FlipXMirrorsColumns) {
  Tensor in(Shape{1, 1, 2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor out = FlipX().apply(in);
  EXPECT_EQ(out.at(0, 0, 0, 0), 3.0F);
  EXPECT_EQ(out.at(0, 0, 0, 2), 1.0F);
  EXPECT_EQ(out.at(0, 0, 1, 1), 5.0F);
}

TEST(FlipTest, FlipYMirrorsRows) {
  Tensor in(Shape{1, 1, 2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor out = FlipY().apply(in);
  EXPECT_EQ(out.at(0, 0, 0, 0), 4.0F);
  EXPECT_EQ(out.at(0, 0, 1, 2), 3.0F);
}

TEST(FlipTest, FlipsAreInvolutions) {
  const Tensor in = random_batch(2, 3, 16, 6);
  EXPECT_TRUE(allclose(FlipX().apply(FlipX().apply(in)), in, 0.0F));
  EXPECT_TRUE(allclose(FlipY().apply(FlipY().apply(in)), in, 0.0F));
}

TEST(GammaTest, DarkensForGammaAboveOne) {
  Tensor in(Shape{1, 1, 2, 2});
  in.fill(0.5F);
  const Tensor dark = Gamma(2.0F).apply(in);
  const Tensor bright = Gamma(0.5F).apply(in);
  EXPECT_NEAR(dark[0], 0.25F, 1e-5F);
  EXPECT_NEAR(bright[0], std::sqrt(0.5F), 1e-5F);
}

TEST(GammaTest, PreservesExtremesAndOrder) {
  Tensor in(Shape{1, 1, 1, 3}, {0.0F, 0.4F, 1.0F});
  const Tensor out = Gamma(2.0F).apply(in);
  EXPECT_EQ(out[0], 0.0F);
  EXPECT_NEAR(out[2], 1.0F, 1e-5F);
  EXPECT_LT(out[1], 0.4F);  // gamma > 1 darkens midtones
}

TEST(GammaTest, RejectsNonPositiveGamma) {
  EXPECT_THROW(Gamma(0.0F), std::invalid_argument);
  EXPECT_THROW(Gamma(-1.0F), std::invalid_argument);
}

TEST(HistTest, EqualizationSpreadsCompressedRange) {
  // A low-contrast image (all mass in [0.4, 0.6]) must span a wider range
  // after global equalization.
  Rng rng(7);
  Tensor in(Shape{1, 1, 16, 16});
  for (std::int64_t i = 0; i < in.numel(); ++i) {
    in[i] = rng.uniform(0.4F, 0.6F);
  }
  const Tensor out = Hist().apply(in);
  float lo = 1.0F, hi = 0.0F;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    lo = std::min(lo, out[i]);
    hi = std::max(hi, out[i]);
  }
  EXPECT_GT(hi - lo, 0.5F);
}

TEST(AdHistTest, EnhancesLocalContrastPerTile) {
  // Left half dark & flat, right half bright & flat; local equalization
  // must amplify the tiny within-half variation.
  Rng rng(8);
  Tensor in(Shape{1, 1, 16, 16});
  for (std::int64_t y = 0; y < 16; ++y) {
    for (std::int64_t x = 0; x < 16; ++x) {
      const float base = x < 8 ? 0.2F : 0.8F;
      in.at(0, 0, y, x) = base + rng.uniform(0.0F, 0.05F);
    }
  }
  const Tensor out = AdHist().apply(in);
  // Within-left-half spread must grow by at least 2x (the clip limit caps
  // how far CLAHE-style equalization can stretch a near-flat histogram).
  float lo = 1.0F, hi = 0.0F;
  for (std::int64_t y = 0; y < 16; ++y) {
    for (std::int64_t x = 0; x < 6; ++x) {
      lo = std::min(lo, out.at(0, 0, y, x));
      hi = std::max(hi, out.at(0, 0, y, x));
    }
  }
  EXPECT_GT(hi - lo, 0.1F);  // input spread was <= 0.05
}

TEST(AdHistTest, RejectsBadConfig) {
  EXPECT_THROW(AdHist(0, 2.0F), std::invalid_argument);
  EXPECT_THROW(AdHist(2, 0.5F), std::invalid_argument);
}

TEST(ConNormTest, FlattensGlobalGradient) {
  // A strong global ramp has high variance; after local contrast
  // normalization the output concentrates around 0.5.
  Tensor in(Shape{1, 1, 16, 16});
  for (std::int64_t y = 0; y < 16; ++y) {
    for (std::int64_t x = 0; x < 16; ++x) {
      in.at(0, 0, y, x) = static_cast<float>(x) / 15.0F;
    }
  }
  const Tensor out = ConNorm().apply(in);
  double mean = 0.0;
  for (std::int64_t i = 0; i < out.numel(); ++i) mean += out[i];
  mean /= static_cast<double>(out.numel());
  EXPECT_NEAR(mean, 0.5, 0.1);
}

TEST(ConNormTest, RejectsEvenWindow) {
  EXPECT_THROW(ConNorm(4), std::invalid_argument);
  EXPECT_THROW(ConNorm(1), std::invalid_argument);
}

TEST(ImAdjTest, StretchesToFullRange) {
  Rng rng(9);
  Tensor in(Shape{1, 1, 16, 16});
  for (std::int64_t i = 0; i < in.numel(); ++i) {
    in[i] = rng.uniform(0.3F, 0.5F);
  }
  const Tensor out = ImAdj().apply(in);
  float lo = 1.0F, hi = 0.0F;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    lo = std::min(lo, out[i]);
    hi = std::max(hi, out[i]);
  }
  EXPECT_LT(lo, 0.05F);
  EXPECT_GT(hi, 0.95F);
}

TEST(ScaleTest, SoftensHighFrequencyContent) {
  // A checkerboard loses amplitude after down/up scaling; a constant image
  // is (approximately) unchanged.
  Tensor checker(Shape{1, 1, 16, 16});
  for (std::int64_t y = 0; y < 16; ++y) {
    for (std::int64_t x = 0; x < 16; ++x) {
      checker.at(0, 0, y, x) = ((x + y) % 2 == 0) ? 1.0F : 0.0F;
    }
  }
  const Tensor soft = Scale(0.8F).apply(checker);
  double amplitude = 0.0;
  for (std::int64_t i = 0; i < soft.numel(); ++i) {
    amplitude += std::fabs(soft[i] - 0.5F);
  }
  amplitude /= static_cast<double>(soft.numel());
  EXPECT_LT(amplitude, 0.45);  // original amplitude is 0.5

  Tensor flat(Shape{1, 1, 16, 16});
  flat.fill(0.7F);
  EXPECT_TRUE(allclose(Scale(0.8F).apply(flat), flat, 1e-4F));
}

TEST(ScaleTest, RejectsBadFactor) {
  EXPECT_THROW(Scale(0.0F), std::invalid_argument);
  EXPECT_THROW(Scale(1.0F), std::invalid_argument);
  EXPECT_THROW(Scale(1.5F), std::invalid_argument);
}

TEST(FactoryTest, ParsesParameterizedSpecs) {
  EXPECT_EQ(make_preprocessor("Gamma(1.50)")->name(), "Gamma(1.50)");
  EXPECT_EQ(make_preprocessor("Scale(0.80)")->name(), "Scale(0.80)");
  EXPECT_EQ(make_preprocessor("ORG")->name(), "ORG");
}

TEST(FactoryTest, RejectsUnknownSpec) {
  EXPECT_THROW(make_preprocessor("Sharpen"), std::invalid_argument);
  EXPECT_THROW(make_preprocessor(""), std::invalid_argument);
}

TEST(IdentityTest, IsExactPassthrough) {
  const Tensor in = random_batch(2, 1, 16, 10);
  EXPECT_TRUE(allclose(Identity().apply(in), in, 0.0F));
}

}  // namespace
}  // namespace pgmr::prep
