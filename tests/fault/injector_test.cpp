// Transient-fault injector tests.
#include "fault/injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "mr/decision.h"
#include "mr/ensemble.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"

namespace pgmr::fault {
namespace {

nn::Network make_net(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  auto conv = std::make_unique<nn::Conv2D>(1, 3, 3, 1, 1);
  conv->init(rng);
  layers.push_back(std::move(conv));
  layers.push_back(std::make_unique<nn::ReLU>());
  layers.push_back(std::make_unique<nn::Flatten>());
  auto fc = std::make_unique<nn::Dense>(3 * 6 * 6, 4);
  fc->init(rng);
  layers.push_back(std::move(fc));
  return nn::Network("faulty", std::move(layers));
}

TEST(InjectorTest, InjectFlipsExactlyOneBitAndRestoreUndoes) {
  nn::Network net = make_net(1);
  const FaultSite site{0, 5, 12};
  const float before = (*net.params()[0])[5];
  const float original = inject(net, site);
  EXPECT_EQ(original, before);
  const float after = (*net.params()[0])[5];
  EXPECT_NE(after, before);
  // Flipping again restores the value (XOR involution)...
  inject(net, site);
  EXPECT_EQ((*net.params()[0])[5], before);
  // ...and restore() does too.
  inject(net, site);
  restore(net, site, original);
  EXPECT_EQ((*net.params()[0])[5], before);
}

TEST(InjectorTest, SignBitFlipNegates) {
  nn::Network net = make_net(2);
  (*net.params()[0])[0] = 1.5F;
  inject(net, {0, 0, 31});
  EXPECT_EQ((*net.params()[0])[0], -1.5F);
}

TEST(InjectorTest, RejectsOutOfRangeSites) {
  nn::Network net = make_net(3);
  EXPECT_THROW(inject(net, {99, 0, 0}), std::out_of_range);
  EXPECT_THROW(inject(net, {0, -1, 0}), std::out_of_range);
  EXPECT_THROW(inject(net, {0, 0, 32}), std::out_of_range);
}

TEST(InjectorTest, SampledSitesAreValidAndBounded) {
  nn::Network net = make_net(4);
  Rng rng(5);
  const auto sites = sample_sites(net, 200, rng, /*max_bit=*/22);
  EXPECT_EQ(sites.size(), 200U);
  const auto params = net.params();
  for (const FaultSite& s : sites) {
    ASSERT_LT(s.param_index, params.size());
    ASSERT_GE(s.element, 0);
    ASSERT_LT(s.element, params[s.param_index]->numel());
    ASSERT_GE(s.bit, 0);
    ASSERT_LE(s.bit, 22);
  }
  EXPECT_THROW(sample_sites(net, 1, rng, 40), std::invalid_argument);
}

TEST(InjectorTest, CampaignPartitionsTrialsAndRestoresWeights) {
  nn::Network net = make_net(6);
  Rng rng(7);
  Tensor images(Shape{20, 1, 6, 6});
  std::vector<std::int64_t> labels(20);
  for (std::int64_t i = 0; i < images.numel(); ++i) {
    images[i] = rng.uniform(0.0F, 1.0F);
  }
  for (auto& l : labels) l = rng.randint(0, 3);

  // Snapshot weights, run the campaign, verify restoration.
  std::vector<float> snapshot;
  for (Tensor* p : net.params()) {
    snapshot.insert(snapshot.end(), p->values().begin(), p->values().end());
  }
  const auto sites = sample_sites(net, 60, rng);
  const CampaignResult result = run_campaign(net, images, labels, sites);
  EXPECT_EQ(result.trials, 60);
  EXPECT_EQ(result.masked + result.degraded + result.corrupted, 60);

  std::size_t k = 0;
  for (Tensor* p : net.params()) {
    for (std::int64_t i = 0; i < p->numel(); ++i, ++k) {
      ASSERT_EQ((*p)[i], snapshot[k]) << "weight not restored at " << k;
    }
  }
}

TEST(InjectorTest, LowMantissaBitsAreMostlyMasked) {
  // Flipping mantissa LSBs perturbs weights by ~2^-23 relative — the
  // prediction vector must not change.
  nn::Network net = make_net(8);
  Rng rng(9);
  Tensor images(Shape{10, 1, 6, 6});
  std::vector<std::int64_t> labels(10, 0);
  for (std::int64_t i = 0; i < images.numel(); ++i) {
    images[i] = rng.uniform(0.0F, 1.0F);
  }
  const auto sites = sample_sites(net, 40, rng, /*max_bit=*/3);
  const CampaignResult result = run_campaign(net, images, labels, sites);
  EXPECT_EQ(result.masked, result.trials);
}

/// Flatten + Dense(2,2) identity net: predictions == argmax(input), so
/// campaign outcomes are exactly constructible.
nn::Network identity_net() {
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(std::make_unique<nn::Flatten>());
  auto fc = std::make_unique<nn::Dense>(2, 2);
  Tensor* w = fc->params()[0];
  (*w)[0] = 1.0F;
  (*w)[3] = 1.0F;
  layers.push_back(std::move(fc));
  return nn::Network("identity", std::move(layers));
}

TEST(InjectorTest, CampaignDropExactlyAtThresholdIsDegradedNotCorrupted) {
  // Hand-built so the accuracy drop is *exactly* representable: four
  // samples, a sign-bit flip on W[0][0] flips only sample 0's prediction,
  // so accuracy falls 1.0 -> 0.75 — a drop of exactly 0.25.
  nn::Network net = identity_net();
  Tensor images(Shape{4, 1, 1, 2});
  images.at(0, 0, 0, 0) = 1.0F;  // (1,0) -> class 0, breaks under the flip
  images.at(1, 0, 0, 1) = 1.0F;  // (0,k) -> class 1, unaffected
  images.at(2, 0, 0, 1) = 2.0F;
  images.at(3, 0, 0, 1) = 3.0F;
  const std::vector<std::int64_t> labels = {0, 1, 1, 1};
  const std::vector<FaultSite> sign_flip = {{0, 0, 31}};

  // Drop == threshold: degraded (predictions changed, accuracy within
  // tolerance). The > comparison makes the boundary inclusive.
  const CampaignResult at = run_campaign(net, images, labels, sign_flip, 0.25);
  EXPECT_EQ(at.trials, 1);
  EXPECT_EQ(at.degraded, 1);
  EXPECT_EQ(at.corrupted, 0);
  EXPECT_EQ(at.masked, 0);

  // Any tighter threshold reclassifies the same flip as corrupted.
  const CampaignResult tight =
      run_campaign(net, images, labels, sign_flip, 0.2);
  EXPECT_EQ(tight.corrupted, 1);
  EXPECT_EQ(tight.degraded, 0);

  // A mantissa-LSB flip on the same weight perturbs by ~2^-23: masked.
  const CampaignResult lsb =
      run_campaign(net, images, labels, {{0, 0, 0}}, 0.25);
  EXPECT_EQ(lsb.masked, 1);
}

TEST(InjectorTest, EnsembleMasksCorruptionThatBreaksASingleNet) {
  // The same sign-bit flip that misclassifies (1,0) on a lone identity net
  // is outvoted 2-of-3 by the uncorrupted MR members.
  mr::Ensemble e;
  for (int m = 0; m < 3; ++m) {
    e.add(mr::Member(std::make_unique<prep::Identity>(), identity_net()));
  }
  Tensor image(Shape{1, 1, 1, 2});
  image[0] = 1.0F;  // class 0

  inject(e.member(0).net().mutable_network(), {0, 0, 31});
  e.member(0).net().refresh_checksum();  // study voting, not ABFT detection

  // The corrupted member alone now gets it wrong...
  const auto solo = mr::votes_from_probabilities(
      e.member(0).probabilities(image));
  EXPECT_EQ(solo[0].label, 1);
  // ...but majority voting over the ensemble masks the fault.
  const mr::MemberVotes votes = e.member_votes(image);
  const mr::Decision d = mr::decide(
      {votes[0][0], votes[1][0], votes[2][0]}, {0.5F, 2});
  EXPECT_TRUE(d.reliable);
  EXPECT_EQ(d.label, 0);
  EXPECT_EQ(d.votes_for_label, 2);
}

TEST(InjectorTest, HighExponentBitsCorruptMoreThanLowMantissa) {
  nn::Network net = make_net(10);
  Rng rng(11);
  Tensor images(Shape{30, 1, 6, 6});
  std::vector<std::int64_t> labels(30);
  for (std::int64_t i = 0; i < images.numel(); ++i) {
    images[i] = rng.uniform(0.0F, 1.0F);
  }
  for (auto& l : labels) l = rng.randint(0, 3);

  // Exponent-only flips (bits 23..30).
  std::vector<FaultSite> exponent_sites;
  Rng rng2(12);
  for (int i = 0; i < 40; ++i) {
    auto sites = sample_sites(net, 1, rng2, 31);
    sites[0].bit = 23 + static_cast<int>(rng2.randint(0, 7));
    exponent_sites.push_back(sites[0]);
  }
  const CampaignResult exponent =
      run_campaign(net, images, labels, exponent_sites);

  Rng rng3(13);
  const auto mantissa_sites = sample_sites(net, 40, rng3, /*max_bit=*/5);
  const CampaignResult mantissa =
      run_campaign(net, images, labels, mantissa_sites);

  EXPECT_GT(exponent.degraded + exponent.corrupted,
            mantissa.degraded + mantissa.corrupted);
}

TEST(InjectorTest, SampledSitesNeverRepeatASite) {
  // Multi-fault campaigns inject a whole batch at once; a duplicated
  // (tensor, element, bit) triple would flip the same bit twice and
  // cancel itself out.
  nn::Network big = make_net(15);
  Rng rng(16);
  const auto many = sample_sites(big, 300, rng, 31);
  std::set<std::tuple<std::size_t, std::int64_t, int>> triples;
  for (const FaultSite& s : many) {
    EXPECT_TRUE(triples.insert({s.param_index, s.element, s.bit}).second)
        << "duplicate site: param " << s.param_index << " element "
        << s.element << " bit " << s.bit;
  }
}

TEST(InjectorTest, StuckAtFaultsFollowBitSemantics) {
  // 1.5F = 0x3FC00000: mantissa MSB (bit 22) set, sign (bit 31) clear.
  nn::Network net = identity_net();
  Tensor& w = *net.params()[0];
  w[0] = 1.5F;

  // stuck-at-one on an already-set bit is a no-op — masked by construction.
  FaultSite site{0, 0, 22, FaultKind::stuck_at_one};
  float original = inject(net, site);
  EXPECT_EQ(original, 1.5F);
  EXPECT_EQ(w[0], 1.5F);
  restore(net, site, original);
  EXPECT_EQ(w[0], 1.5F);

  // stuck-at-zero clears bit 22: 1.5 -> 1.0; restore undoes it (an AND is
  // not an involution, so the saved original is what makes undo possible).
  site.kind = FaultKind::stuck_at_zero;
  original = inject(net, site);
  EXPECT_EQ(w[0], 1.0F);
  restore(net, site, original);
  EXPECT_EQ(w[0], 1.5F);

  // stuck-at-one on the clear sign bit: 1.5 -> -1.5.
  site = {0, 0, 31, FaultKind::stuck_at_one};
  original = inject(net, site);
  EXPECT_EQ(w[0], -1.5F);
  restore(net, site, original);
  EXPECT_EQ(w[0], 1.5F);
}

TEST(InjectorTest, ToStringCoversEveryFaultKind) {
  EXPECT_STREQ(to_string(FaultKind::flip), "flip");
  EXPECT_STREQ(to_string(FaultKind::stuck_at_one), "stuck_at_one");
  EXPECT_STREQ(to_string(FaultKind::stuck_at_zero), "stuck_at_zero");
}

TEST(InjectorTest, BurstSitesAreAdjacentInsideOneTensor) {
  nn::Network net = make_net(20);
  Rng rng(21);
  const auto groups = sample_burst_sites(net, 12, 5, rng, /*max_bit=*/22,
                                         FaultKind::stuck_at_zero);
  ASSERT_EQ(groups.size(), 12U);
  const auto params = net.params();
  for (const auto& group : groups) {
    ASSERT_FALSE(group.empty());
    const std::size_t tensor = group[0].param_index;
    ASSERT_LT(tensor, params.size());
    const std::int64_t numel = params[tensor]->numel();
    // A burst never crosses a tensor boundary; it is clamped to tensors
    // smaller than the requested length (the conv/dense bias vectors here).
    EXPECT_EQ(static_cast<std::int64_t>(group.size()),
              std::min<std::int64_t>(5, numel));
    for (std::size_t i = 0; i < group.size(); ++i) {
      EXPECT_EQ(group[i].param_index, tensor);
      EXPECT_EQ(group[i].bit, group[0].bit);
      EXPECT_EQ(group[i].kind, FaultKind::stuck_at_zero);
      EXPECT_EQ(group[i].element,
                group[0].element + static_cast<std::int64_t>(i));
    }
    EXPECT_GE(group.front().element, 0);
    EXPECT_LT(group.back().element, numel);
    EXPECT_LE(group[0].bit, 22);
  }
  EXPECT_THROW(sample_burst_sites(net, 1, 0, rng), std::invalid_argument);
  EXPECT_THROW(sample_burst_sites(net, 1, 1, rng, 40),
               std::invalid_argument);
}

TEST(InjectorTest, MultiFaultCampaignClassifiesRegionsAndRestores) {
  // Same exactly-constructible setup as the single-fault boundary test,
  // but each trial now injects a whole *group* of sites at once.
  nn::Network net = identity_net();
  Tensor images(Shape{4, 1, 1, 2});
  images.at(0, 0, 0, 0) = 1.0F;
  images.at(1, 0, 0, 1) = 1.0F;
  images.at(2, 0, 0, 1) = 2.0F;
  images.at(3, 0, 0, 1) = 3.0F;
  const std::vector<std::int64_t> labels = {0, 1, 1, 1};

  std::vector<float> snapshot;
  for (Tensor* p : net.params()) {
    snapshot.insert(snapshot.end(), p->values().begin(), p->values().end());
  }

  const std::vector<std::vector<FaultSite>> trials = {
      // Both diagonal weights sign-flipped: every prediction breaks,
      // accuracy 1.0 -> 0.0 — corrupted at any threshold < 1.
      {{0, 0, 31}, {0, 3, 31}},
      // Two mantissa-LSB flips: region injected, nothing observable.
      {{0, 0, 0}, {0, 3, 0}},
      // The same site twice in one group: the second flip undoes the
      // first (masked), and reverse-order restore leaves the pristine
      // value — the overlap case the restore ordering exists for.
      {{0, 0, 31}, {0, 0, 31}},
  };
  const CampaignResult result =
      run_campaign(net, images, labels, trials, 0.25);
  EXPECT_EQ(result.trials, 3);
  EXPECT_EQ(result.corrupted, 1);
  EXPECT_EQ(result.masked, 2);
  EXPECT_EQ(result.degraded, 0);

  std::size_t k = 0;
  for (Tensor* p : net.params()) {
    for (std::int64_t i = 0; i < p->numel(); ++i, ++k) {
      ASSERT_EQ((*p)[i], snapshot[k]) << "weight not restored at " << k;
    }
  }
}

TEST(InjectorTest, BurstCorruptsWhereSingleBitIsMasked) {
  // Region resolution exists because adjacency compounds: one stuck-at-one
  // exponent fault may be survivable, a whole burst of them across
  // adjacent weights rarely is.
  nn::Network net = make_net(22);
  Rng rng(23);
  Tensor images(Shape{20, 1, 6, 6});
  std::vector<std::int64_t> labels(20);
  for (std::int64_t i = 0; i < images.numel(); ++i) {
    images[i] = rng.uniform(0.0F, 1.0F);
  }
  for (auto& l : labels) l = rng.randint(0, 3);

  // Pin every burst to stuck-at-one on the *sign* bit of the dense weight
  // (tensor 2): a single such fault is masked whenever the weight was
  // already negative (~half the sites), while a burst forces a whole run
  // of 8 adjacent weights negative at once.
  std::vector<std::vector<FaultSite>> bursts =
      sample_burst_sites(net, 20, 8, rng, 31, FaultKind::stuck_at_one);
  std::vector<std::vector<FaultSite>> singles;
  const std::int64_t dense_numel = net.params()[2]->numel();
  for (auto& group : bursts) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      group[i].param_index = 2;
      group[i].bit = 31;
      group[i].element = (group[0].element % dense_numel +
                          static_cast<std::int64_t>(i)) %
                         dense_numel;
    }
    singles.push_back({group[0]});
  }
  const CampaignResult burst_result =
      run_campaign(net, images, labels, bursts);
  const CampaignResult single_result =
      run_campaign(net, images, labels, singles);
  EXPECT_GE(burst_result.degraded + burst_result.corrupted,
            single_result.degraded + single_result.corrupted);
  EXPECT_GT(burst_result.degraded + burst_result.corrupted, 0);
}

TEST(InjectorTest, SamplingExhaustsSmallSiteSpaceExactly) {
  // identity_net has 6 parameter elements; with max_bit=0 the site space
  // is exactly 6. Drawing all of them yields each once; asking for more
  // is an error rather than an infinite redraw loop.
  nn::Network net = identity_net();
  Rng rng(17);
  const auto sites = sample_sites(net, 6, rng, /*max_bit=*/0);
  std::set<std::pair<std::size_t, std::int64_t>> seen;
  for (const FaultSite& s : sites) {
    EXPECT_EQ(s.bit, 0);
    EXPECT_TRUE(seen.insert({s.param_index, s.element}).second);
  }
  EXPECT_EQ(seen.size(), 6U);
  EXPECT_THROW(sample_sites(net, 7, rng, 0), std::invalid_argument);
}

}  // namespace
}  // namespace pgmr::fault
