// ChaosInjector / chaos_wrap / tap_activations unit tests.
#include "fault/chaos.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "nn/dense.h"
#include "nn/network.h"
#include "nn/pooling.h"
#include "quant/quantized_network.h"

namespace pgmr::fault {
namespace {

using std::chrono::milliseconds;

Tensor small_batch() {
  Tensor x(Shape{2, 1, 2, 2});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(i);
  }
  return x;
}

TEST(ChaosInjectorTest, UnarmedMembersNeverFire) {
  ChaosInjector chaos(2);
  EXPECT_EQ(chaos.fire(0, nullptr), ChaosFault::none);
  EXPECT_EQ(chaos.fired(0), 0U);
}

TEST(ChaosInjectorTest, BoundedPlanExhaustsAfterCount) {
  ChaosInjector chaos(1);
  chaos.arm(0, ChaosFault::member_exception, /*count=*/2);
  EXPECT_EQ(chaos.fire(0, nullptr), ChaosFault::member_exception);
  EXPECT_EQ(chaos.fire(0, nullptr), ChaosFault::member_exception);
  EXPECT_EQ(chaos.fire(0, nullptr), ChaosFault::none);
  EXPECT_EQ(chaos.fired(0), 2U);
}

TEST(ChaosInjectorTest, NegativeCountFiresUntilDisarm) {
  ChaosInjector chaos(1);
  chaos.arm(0, ChaosFault::nan_output, /*count=*/-1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(chaos.fire(0, nullptr), ChaosFault::nan_output);
  }
  chaos.disarm(0);
  EXPECT_EQ(chaos.fire(0, nullptr), ChaosFault::none);
  EXPECT_EQ(chaos.fired(0), 10U);
}

TEST(ChaosInjectorTest, RejectsOutOfRangeMember) {
  ChaosInjector chaos(2);
  EXPECT_THROW(chaos.arm(2, ChaosFault::member_exception), std::out_of_range);
  EXPECT_THROW(chaos.fire(5, nullptr), std::out_of_range);
  EXPECT_THROW(chaos.disarm(2), std::out_of_range);
  EXPECT_THROW(chaos.fired(2), std::out_of_range);
  EXPECT_THROW(chaos.arm_activation(2, ActivationCorrupt{}),
               std::out_of_range);
  EXPECT_THROW(chaos.fire_activation(2, 0, nullptr), std::out_of_range);
  EXPECT_THROW(chaos.activation_fired(2), std::out_of_range);
}

TEST(ChaosInjectorTest, ArmRejectsActivationCorrupt) {
  // activation_corrupt needs a region spec; the spec-less arm() refuses it
  // so a plan can never fire with a default-constructed region by accident.
  ChaosInjector chaos(1);
  EXPECT_THROW(chaos.arm(0, ChaosFault::activation_corrupt),
               std::invalid_argument);
}

TEST(ChaosInjectorTest, ActivationPlanFiresOnMatchingLayerOnly) {
  ChaosInjector chaos(1);
  ActivationCorrupt spec;
  spec.layer = 2;
  spec.offset = 7;
  spec.elems = 3;
  spec.value = -4.0F;
  chaos.arm_activation(0, spec, /*count=*/2);

  ActivationCorrupt out;
  EXPECT_FALSE(chaos.fire_activation(0, 0, &out));
  EXPECT_FALSE(chaos.fire_activation(0, 1, &out));
  EXPECT_TRUE(chaos.fire_activation(0, 2, &out));
  EXPECT_EQ(out.layer, 2);
  EXPECT_EQ(out.offset, 7);
  EXPECT_EQ(out.elems, 3);
  EXPECT_EQ(out.value, -4.0F);
  EXPECT_TRUE(chaos.fire_activation(0, 2, &out));
  // count exhausted
  EXPECT_FALSE(chaos.fire_activation(0, 2, &out));
  EXPECT_EQ(chaos.activation_fired(0), 2U);
  // The activation plan never leaks into the preprocessor-level path.
  EXPECT_EQ(chaos.fire(0, nullptr), ChaosFault::none);
  EXPECT_EQ(chaos.fired(0), 0U);
}

TEST(ChaosInjectorTest, NegativeLayerMatchesFirstTapAndDisarmClears) {
  ChaosInjector chaos(1);
  ActivationCorrupt spec;  // layer = -1: fire at the pass's first tap
  chaos.arm_activation(0, spec, /*count=*/-1);
  ActivationCorrupt out;
  EXPECT_FALSE(chaos.fire_activation(0, 3, &out));
  EXPECT_TRUE(chaos.fire_activation(0, 0, &out));
  EXPECT_TRUE(chaos.fire_activation(0, 0, &out));
  chaos.disarm(0);
  EXPECT_FALSE(chaos.fire_activation(0, 0, &out));
  EXPECT_EQ(chaos.activation_fired(0), 2U);
}

TEST(ChaosWrapTest, PassesThroughWhenUnarmed) {
  auto chaos = std::make_shared<ChaosInjector>(1);
  auto prep = chaos_wrap(std::make_unique<prep::Identity>(), chaos, 0);
  EXPECT_EQ(prep->name(), prep::Identity().name());
  const Tensor in = small_batch();
  const Tensor out = prep->apply(in);
  ASSERT_EQ(out.numel(), in.numel());
  for (std::int64_t i = 0; i < in.numel(); ++i) EXPECT_EQ(out[i], in[i]);
}

TEST(ChaosWrapTest, InjectsExceptionWhenArmed) {
  auto chaos = std::make_shared<ChaosInjector>(1);
  auto prep = chaos_wrap(std::make_unique<prep::Identity>(), chaos, 0);
  chaos->arm(0, ChaosFault::member_exception, 1);
  EXPECT_THROW(prep->apply(small_batch()), std::runtime_error);
  // Plan exhausted: back to pass-through.
  EXPECT_NO_THROW(prep->apply(small_batch()));
}

TEST(ChaosWrapTest, NanOutputPoisonsTheWholeTensor) {
  // A lone NaN could be squashed by max-pooling comparisons, so the fault
  // poisons every element — guaranteeing a non-finite softmax downstream.
  auto chaos = std::make_shared<ChaosInjector>(1);
  auto prep = chaos_wrap(std::make_unique<prep::Identity>(), chaos, 0);
  chaos->arm(0, ChaosFault::nan_output, 1);
  const Tensor out = prep->apply(small_batch());
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_TRUE(std::isnan(out[i]));
  }
}

TEST(ChaosWrapTest, LatencySpikeDelaysButPreservesOutput) {
  auto chaos = std::make_shared<ChaosInjector>(1);
  auto prep = chaos_wrap(std::make_unique<prep::Identity>(), chaos, 0);
  chaos->arm(0, ChaosFault::latency_spike, 1, milliseconds(30));
  const auto start = std::chrono::steady_clock::now();
  const Tensor in = small_batch();
  const Tensor out = prep->apply(in);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, milliseconds(30));
  for (std::int64_t i = 0; i < in.numel(); ++i) EXPECT_EQ(out[i], in[i]);
}

TEST(ChaosWrapTest, RejectsBadInjectorOrMember) {
  auto chaos = std::make_shared<ChaosInjector>(1);
  EXPECT_THROW(chaos_wrap(std::make_unique<prep::Identity>(), nullptr, 0),
               std::invalid_argument);
  EXPECT_THROW(chaos_wrap(std::make_unique<prep::Identity>(), chaos, 1),
               std::invalid_argument);
}

TEST(ChaosFaultTest, ToStringCoversEveryFault) {
  EXPECT_STREQ(to_string(ChaosFault::none), "none");
  EXPECT_STREQ(to_string(ChaosFault::member_exception), "member_exception");
  EXPECT_STREQ(to_string(ChaosFault::latency_spike), "latency_spike");
  EXPECT_STREQ(to_string(ChaosFault::nan_output), "nan_output");
  EXPECT_STREQ(to_string(ChaosFault::activation_corrupt),
               "activation_corrupt");
}

// Identity Flatten+Dense(2,2) network wrapped at full precision: the
// quantized forward of input (a,b) yields logits (a,b), so tap-level
// corruptions are exactly visible in the output.
quant::QuantizedNetwork identity_qnet() {
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(std::make_unique<nn::Flatten>());
  auto fc = std::make_unique<nn::Dense>(2, 2);
  Tensor* w = fc->params()[0];
  (*w)[0] = 1.0F;
  (*w)[3] = 1.0F;
  layers.push_back(std::move(fc));
  return quant::QuantizedNetwork(
      nn::Network("identity", std::move(layers)), /*bits=*/32,
      nn::Protection::final_fc);
}

Tensor one_by_two(float a, float b) {
  Tensor x(Shape{1, 1, 1, 2});
  x[0] = a;
  x[1] = b;
  return x;
}

TEST(TapActivationsTest, CorruptsForwardBetweenLayersInvisiblyToAbft) {
  quant::QuantizedNetwork net = identity_qnet();
  auto chaos = std::make_shared<ChaosInjector>(1);
  tap_activations(net, chaos, 0);

  // Unarmed: identity behaviour.
  quant::AbftCheck clean;
  Tensor logits = net.forward(one_by_two(5.0F, 1.0F), &clean);
  EXPECT_EQ(logits[0], 5.0F);
  EXPECT_EQ(logits[1], 1.0F);
  EXPECT_TRUE(clean.ok);

  // Overwrite element 1 of the Flatten output (layer 0): the Dense layer
  // consumes the corrupted activation, so the verdict flips — and ABFT
  // still reports ok because the GEMM is verified against the input it
  // actually saw. That invisibility is the reason the taxonomy needs the
  // MR vote for the activation row.
  ActivationCorrupt spec;
  spec.layer = 0;
  spec.offset = 1;
  spec.elems = 1;
  spec.value = 9.0F;
  chaos->arm_activation(0, spec, /*count=*/1);
  quant::AbftCheck faulted;
  logits = net.forward(one_by_two(5.0F, 1.0F), &faulted);
  EXPECT_EQ(logits[0], 5.0F);
  EXPECT_EQ(logits[1], 9.0F);
  EXPECT_TRUE(faulted.checked);
  EXPECT_TRUE(faulted.ok);
  EXPECT_EQ(chaos->activation_fired(0), 1U);

  // Plan exhausted: clean again, and the weights were never touched.
  logits = net.forward(one_by_two(5.0F, 1.0F));
  EXPECT_EQ(logits[1], 1.0F);
  EXPECT_TRUE(net.params_intact());
}

TEST(TapActivationsTest, RegionIsClampedToTheLiveTensor) {
  quant::QuantizedNetwork net = identity_qnet();
  auto chaos = std::make_shared<ChaosInjector>(1);
  tap_activations(net, chaos, 0);

  // Offset far past the 2-element activation, absurd length: the tap
  // clamps to the last element instead of scribbling out of bounds.
  ActivationCorrupt spec;
  spec.layer = 0;
  spec.offset = 1000;
  spec.elems = 1 << 20;
  spec.value = -3.0F;
  chaos->arm_activation(0, spec, /*count=*/1);
  const Tensor logits = net.forward(one_by_two(5.0F, 1.0F));
  EXPECT_EQ(logits[0], 5.0F);
  EXPECT_EQ(logits[1], -3.0F);
}

TEST(TapActivationsTest, RejectsBadInjectorOrMember) {
  quant::QuantizedNetwork net = identity_qnet();
  auto chaos = std::make_shared<ChaosInjector>(1);
  EXPECT_THROW(tap_activations(net, nullptr, 0), std::invalid_argument);
  EXPECT_THROW(tap_activations(net, chaos, 1), std::invalid_argument);
}

TEST(ChaosInjectorTest, ShardKillRefusalAndReviveLifecycle) {
  ChaosInjector chaos(1);
  EXPECT_FALSE(chaos.shard_down(3));
  chaos.kill_shard(3);
  EXPECT_TRUE(chaos.shard_down(3));
  EXPECT_FALSE(chaos.shard_down(2));
  chaos.on_shard_refused(3);
  chaos.on_shard_refused(3);
  EXPECT_EQ(chaos.shard_refusals(3), 2U);
  chaos.revive_shard(3);
  EXPECT_FALSE(chaos.shard_down(3));
  EXPECT_EQ(chaos.shard_refusals(3), 2U);
}

}  // namespace
}  // namespace pgmr::fault
