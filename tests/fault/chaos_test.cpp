// ChaosInjector / chaos_wrap unit tests.
#include "fault/chaos.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>

namespace pgmr::fault {
namespace {

using std::chrono::milliseconds;

Tensor small_batch() {
  Tensor x(Shape{2, 1, 2, 2});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(i);
  }
  return x;
}

TEST(ChaosInjectorTest, UnarmedMembersNeverFire) {
  ChaosInjector chaos(2);
  EXPECT_EQ(chaos.fire(0, nullptr), ChaosFault::none);
  EXPECT_EQ(chaos.fired(0), 0U);
}

TEST(ChaosInjectorTest, BoundedPlanExhaustsAfterCount) {
  ChaosInjector chaos(1);
  chaos.arm(0, ChaosFault::member_exception, /*count=*/2);
  EXPECT_EQ(chaos.fire(0, nullptr), ChaosFault::member_exception);
  EXPECT_EQ(chaos.fire(0, nullptr), ChaosFault::member_exception);
  EXPECT_EQ(chaos.fire(0, nullptr), ChaosFault::none);
  EXPECT_EQ(chaos.fired(0), 2U);
}

TEST(ChaosInjectorTest, NegativeCountFiresUntilDisarm) {
  ChaosInjector chaos(1);
  chaos.arm(0, ChaosFault::nan_output, /*count=*/-1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(chaos.fire(0, nullptr), ChaosFault::nan_output);
  }
  chaos.disarm(0);
  EXPECT_EQ(chaos.fire(0, nullptr), ChaosFault::none);
  EXPECT_EQ(chaos.fired(0), 10U);
}

TEST(ChaosInjectorTest, RejectsOutOfRangeMember) {
  ChaosInjector chaos(2);
  EXPECT_THROW(chaos.arm(2, ChaosFault::member_exception), std::out_of_range);
  EXPECT_THROW(chaos.fire(5, nullptr), std::out_of_range);
}

TEST(ChaosWrapTest, PassesThroughWhenUnarmed) {
  auto chaos = std::make_shared<ChaosInjector>(1);
  auto prep = chaos_wrap(std::make_unique<prep::Identity>(), chaos, 0);
  EXPECT_EQ(prep->name(), prep::Identity().name());
  const Tensor in = small_batch();
  const Tensor out = prep->apply(in);
  ASSERT_EQ(out.numel(), in.numel());
  for (std::int64_t i = 0; i < in.numel(); ++i) EXPECT_EQ(out[i], in[i]);
}

TEST(ChaosWrapTest, InjectsExceptionWhenArmed) {
  auto chaos = std::make_shared<ChaosInjector>(1);
  auto prep = chaos_wrap(std::make_unique<prep::Identity>(), chaos, 0);
  chaos->arm(0, ChaosFault::member_exception, 1);
  EXPECT_THROW(prep->apply(small_batch()), std::runtime_error);
  // Plan exhausted: back to pass-through.
  EXPECT_NO_THROW(prep->apply(small_batch()));
}

TEST(ChaosWrapTest, NanOutputPoisonsTheWholeTensor) {
  // A lone NaN could be squashed by max-pooling comparisons, so the fault
  // poisons every element — guaranteeing a non-finite softmax downstream.
  auto chaos = std::make_shared<ChaosInjector>(1);
  auto prep = chaos_wrap(std::make_unique<prep::Identity>(), chaos, 0);
  chaos->arm(0, ChaosFault::nan_output, 1);
  const Tensor out = prep->apply(small_batch());
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_TRUE(std::isnan(out[i]));
  }
}

TEST(ChaosWrapTest, LatencySpikeDelaysButPreservesOutput) {
  auto chaos = std::make_shared<ChaosInjector>(1);
  auto prep = chaos_wrap(std::make_unique<prep::Identity>(), chaos, 0);
  chaos->arm(0, ChaosFault::latency_spike, 1, milliseconds(30));
  const auto start = std::chrono::steady_clock::now();
  const Tensor in = small_batch();
  const Tensor out = prep->apply(in);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, milliseconds(30));
  for (std::int64_t i = 0; i < in.numel(); ++i) EXPECT_EQ(out[i], in[i]);
}

TEST(ChaosWrapTest, RejectsBadInjectorOrMember) {
  auto chaos = std::make_shared<ChaosInjector>(1);
  EXPECT_THROW(chaos_wrap(std::make_unique<prep::Identity>(), nullptr, 0),
               std::invalid_argument);
  EXPECT_THROW(chaos_wrap(std::make_unique<prep::Identity>(), chaos, 1),
               std::invalid_argument);
}

TEST(ChaosFaultTest, ToStringCoversEveryFault) {
  EXPECT_STREQ(to_string(ChaosFault::none), "none");
  EXPECT_STREQ(to_string(ChaosFault::member_exception), "member_exception");
  EXPECT_STREQ(to_string(ChaosFault::latency_spike), "latency_spike");
  EXPECT_STREQ(to_string(ChaosFault::nan_output), "nan_output");
}

}  // namespace
}  // namespace pgmr::fault
