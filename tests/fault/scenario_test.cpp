// ScenarioSchedule tests: scripted, correlated fault plans keyed to the
// request clock.
#include "fault/scenario.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace pgmr::fault {
namespace {

TEST(ScenarioTest, ToStringCoversEveryAction) {
  EXPECT_STREQ(to_string(ScenarioAction::arm_member), "arm_member");
  EXPECT_STREQ(to_string(ScenarioAction::disarm_member), "disarm_member");
  EXPECT_STREQ(to_string(ScenarioAction::arm_activation), "arm_activation");
  EXPECT_STREQ(to_string(ScenarioAction::kill_shard), "kill_shard");
  EXPECT_STREQ(to_string(ScenarioAction::revive_shard), "revive_shard");
}

TEST(ScenarioTest, EventsAreSortedByRequestIndexStably) {
  // Authored out of order; the tie at request 4 must keep listed order
  // (arm before disarm), which advance()'s net effect makes observable.
  ScenarioEvent late;
  late.at_request = 9;
  ScenarioEvent arm_at_4;
  arm_at_4.at_request = 4;
  arm_at_4.action = ScenarioAction::arm_member;
  arm_at_4.targets = {0};
  ScenarioEvent disarm_at_4;
  disarm_at_4.at_request = 4;
  disarm_at_4.action = ScenarioAction::disarm_member;
  disarm_at_4.targets = {0};
  ScenarioSchedule schedule({late, arm_at_4, disarm_at_4});

  ASSERT_EQ(schedule.events().size(), 3U);
  EXPECT_EQ(schedule.events()[0].at_request, 4);
  EXPECT_EQ(schedule.events()[0].action, ScenarioAction::arm_member);
  EXPECT_EQ(schedule.events()[1].at_request, 4);
  EXPECT_EQ(schedule.events()[1].action, ScenarioAction::disarm_member);
  EXPECT_EQ(schedule.events()[2].at_request, 9);

  ChaosInjector chaos(1);
  EXPECT_EQ(schedule.advance(4, chaos), 2U);
  // arm then disarm at the same tick: net effect is an unarmed member. If
  // the sort were unstable and reversed the tie, the plan would still be
  // armed here.
  EXPECT_EQ(chaos.fire(0, nullptr), ChaosFault::none);
}

TEST(ScenarioTest, AdvanceAppliesEverythingUpToTheRequestClock) {
  ScenarioEvent a;
  a.at_request = 2;
  a.targets = {0};
  a.fault = ChaosFault::nan_output;
  ScenarioEvent b;
  b.at_request = 5;
  b.targets = {1};
  b.fault = ChaosFault::member_exception;
  ScenarioSchedule schedule({a, b});
  ChaosInjector chaos(2);

  EXPECT_EQ(schedule.advance(1, chaos), 0U);
  EXPECT_EQ(schedule.applied(), 0U);
  EXPECT_FALSE(schedule.done());

  // Skipping the clock straight past both events applies both, in order.
  EXPECT_EQ(schedule.advance(7, chaos), 2U);
  EXPECT_EQ(schedule.applied(), 2U);
  EXPECT_TRUE(schedule.done());
  EXPECT_EQ(chaos.fire(0, nullptr), ChaosFault::nan_output);
  EXPECT_EQ(chaos.fire(1, nullptr), ChaosFault::member_exception);

  // Idempotent once done.
  EXPECT_EQ(schedule.advance(100, chaos), 0U);
}

TEST(ScenarioTest, MultiTargetEventArmsEveryListedMember) {
  // One event, several targets — the correlated case the module exists
  // for: both members fault at the same request tick.
  ScenarioEvent ev;
  ev.at_request = 0;
  ev.targets = {0, 2};
  ev.fault = ChaosFault::member_exception;
  ev.count = 1;
  ScenarioSchedule schedule({ev});
  ChaosInjector chaos(3);
  EXPECT_EQ(schedule.advance(0, chaos), 1U);
  EXPECT_EQ(chaos.fire(0, nullptr), ChaosFault::member_exception);
  EXPECT_EQ(chaos.fire(1, nullptr), ChaosFault::none);
  EXPECT_EQ(chaos.fire(2, nullptr), ChaosFault::member_exception);
}

TEST(ScenarioTest, ShardAndActivationActionsDispatch) {
  ScenarioEvent kill;
  kill.at_request = 1;
  kill.action = ScenarioAction::kill_shard;
  kill.targets = {1, 3};
  ScenarioEvent act;
  act.at_request = 2;
  act.action = ScenarioAction::arm_activation;
  act.targets = {0};
  act.activation.layer = 4;
  act.activation.value = -7.0F;
  act.count = 1;
  ScenarioEvent revive;
  revive.at_request = 3;
  revive.action = ScenarioAction::revive_shard;
  revive.targets = {1};
  ScenarioSchedule schedule({kill, act, revive});
  ChaosInjector chaos(1);

  schedule.advance(1, chaos);
  EXPECT_TRUE(chaos.shard_down(1));
  EXPECT_TRUE(chaos.shard_down(3));

  schedule.advance(2, chaos);
  ActivationCorrupt out;
  EXPECT_TRUE(chaos.fire_activation(0, 4, &out));
  EXPECT_EQ(out.value, -7.0F);

  schedule.advance(3, chaos);
  EXPECT_FALSE(chaos.shard_down(1));
  EXPECT_TRUE(chaos.shard_down(3));
}

TEST(ScenarioTest, OutOfRangeTargetSurfacesTheInjectorThrow) {
  // Scenario scripts are authored by hand; a typo'd member index must
  // fail loudly at apply time, not arm some other member.
  ScenarioEvent ev;
  ev.at_request = 0;
  ev.targets = {5};
  ScenarioSchedule schedule({ev});
  ChaosInjector chaos(2);
  EXPECT_THROW(schedule.advance(0, chaos), std::out_of_range);
}

}  // namespace
}  // namespace pgmr::fault
