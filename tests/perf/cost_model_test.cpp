// Analytic cost model tests.
#include "perf/cost_model.h"

#include <gtest/gtest.h>

namespace pgmr::perf {
namespace {

nn::CostStats stats(std::int64_t macs, std::int64_t wb, std::int64_t ab) {
  nn::CostStats s;
  s.macs = macs;
  s.weight_bytes = wb;
  s.activation_bytes = ab;
  return s;
}

TEST(CostModelTest, RooflineTakesMaxOfComputeAndMemory) {
  HardwareModel hw;
  hw.peak_macs_per_s = 1e9;
  hw.mem_bandwidth_bytes_per_s = 1e9;
  CostModel model(hw);
  // Compute-bound: 1e6 MACs vs 1e3 bytes.
  const InferenceCost compute = model.network_cost(stats(1000000, 500, 500), 32);
  EXPECT_DOUBLE_EQ(compute.latency_s, 1e-3);
  // Memory-bound: 1e3 MACs vs 1e6 bytes.
  const InferenceCost memory = model.network_cost(stats(1000, 500000, 500000), 32);
  EXPECT_DOUBLE_EQ(memory.latency_s, 1e-3);
}

TEST(CostModelTest, PrecisionPacksMemoryTraffic) {
  CostModel model;
  const nn::CostStats s = stats(1000, 1 << 20, 1 << 20);
  const InferenceCost full = model.network_cost(s, 32);
  const InferenceCost half = model.network_cost(s, 16);
  // Memory-bound workload: both latency and energy shrink roughly 2x.
  EXPECT_NEAR(half.latency_s / full.latency_s, 0.5, 1e-6);
  EXPECT_LT(half.energy_j, full.energy_j);
}

TEST(CostModelTest, PrecisionDoesNotChangeComputeEnergy) {
  HardwareModel hw;
  hw.energy_per_byte_j = 0.0;  // isolate compute term
  CostModel model(hw);
  const nn::CostStats s = stats(1000000, 1000, 1000);
  EXPECT_DOUBLE_EQ(model.network_cost(s, 32).energy_j,
                   model.network_cost(s, 14).energy_j);
}

TEST(CostModelTest, RejectsInvalidBits) {
  CostModel model;
  EXPECT_THROW(model.network_cost(stats(1, 1, 1), 0), std::invalid_argument);
  EXPECT_THROW(model.network_cost(stats(1, 1, 1), 33), std::invalid_argument);
}

TEST(CostModelTest, SequentialSumsMembersPlusOverheads) {
  HardwareModel hw;
  hw.preprocess_fraction = 0.1;
  hw.decision_latency_s = 1.0;
  hw.decision_energy_j = 2.0;
  CostModel model(hw);
  const std::vector<InferenceCost> members = {{10.0, 100.0}, {20.0, 200.0}};
  const InferenceCost total = model.system_sequential(members);
  EXPECT_DOUBLE_EQ(total.latency_s, 10.0 + 1.0 + 20.0 + 2.0 + 1.0);
  EXPECT_DOUBLE_EQ(total.energy_j, 100.0 + 10.0 + 200.0 + 20.0 + 2.0);
}

TEST(CostModelTest, BatchedHidesLatencyNotEnergy) {
  HardwareModel hw;
  hw.preprocess_fraction = 0.0;
  hw.decision_latency_s = 0.0;
  hw.decision_energy_j = 0.0;
  CostModel model(hw);
  const std::vector<InferenceCost> members = {
      {10.0, 1.0}, {12.0, 1.0}, {8.0, 1.0}, {9.0, 1.0}};
  const InferenceCost two_gpus = model.system_batched(members, 2);
  // Batches: max(10,12) + max(8,9) = 21.
  EXPECT_DOUBLE_EQ(two_gpus.latency_s, 21.0);
  EXPECT_DOUBLE_EQ(two_gpus.energy_j, 4.0);
  const InferenceCost one_gpu = model.system_batched(members, 1);
  EXPECT_DOUBLE_EQ(one_gpu.latency_s, 39.0);
  EXPECT_THROW(model.system_batched(members, 0), std::invalid_argument);
}

TEST(CostModelTest, StagedWeightsPrefixCosts) {
  HardwareModel hw;
  hw.preprocess_fraction = 0.0;
  hw.decision_latency_s = 0.0;
  hw.decision_energy_j = 0.0;
  CostModel model(hw);
  const std::vector<InferenceCost> members = {
      {1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  // Half the samples stop after 2 members, half need all 4.
  const std::vector<std::int64_t> histogram = {0, 50, 0, 50};
  const InferenceCost expected = model.system_staged(members, histogram);
  EXPECT_DOUBLE_EQ(expected.latency_s, 0.5 * 2.0 + 0.5 * 4.0);
  EXPECT_DOUBLE_EQ(expected.energy_j, 3.0);
}

TEST(CostModelTest, StagedRejectsBadHistogram) {
  CostModel model;
  const std::vector<InferenceCost> members = {{1.0, 1.0}};
  EXPECT_THROW(model.system_staged(members, {1, 2}), std::invalid_argument);
  EXPECT_THROW(model.system_staged(members, {0}), std::invalid_argument);
}

TEST(CostModelTest, StagedNeverExceedsSequential) {
  CostModel model;
  const std::vector<InferenceCost> members = {
      {3.0, 5.0}, {3.0, 5.0}, {3.0, 5.0}};
  const std::vector<std::int64_t> histogram = {10, 5, 2};
  const InferenceCost staged = model.system_staged(members, histogram);
  const InferenceCost full = model.system_sequential(members);
  EXPECT_LE(staged.latency_s, full.latency_s);
  EXPECT_LE(staged.energy_j, full.energy_j);
}

}  // namespace
}  // namespace pgmr::perf
