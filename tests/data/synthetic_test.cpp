// Synthetic corpus generator tests: determinism, balance, value ranges and
// the monotone effect of the difficulty knobs.
#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pgmr::data {
namespace {

SyntheticSpec tiny_spec() {
  SyntheticSpec s;
  s.channels = 3;
  s.size = 16;
  s.num_classes = 5;
  s.count = 200;
  s.seed = 42;
  return s;
}

TEST(SyntheticTest, GeneratesRequestedGeometry) {
  const Dataset ds = generate_synthetic(tiny_spec());
  EXPECT_EQ(ds.size(), 200);
  EXPECT_EQ(ds.images.shape(), Shape({200, 3, 16, 16}));
  EXPECT_EQ(ds.num_classes, 5);
  EXPECT_EQ(ds.labels.size(), 200U);
}

TEST(SyntheticTest, DeterministicForSameSeed) {
  const Dataset a = generate_synthetic(tiny_spec());
  const Dataset b = generate_synthetic(tiny_spec());
  EXPECT_TRUE(allclose(a.images, b.images, 0.0F));
  EXPECT_EQ(a.labels, b.labels);
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticSpec spec = tiny_spec();
  const Dataset a = generate_synthetic(spec);
  spec.seed = 43;
  const Dataset b = generate_synthetic(spec);
  EXPECT_FALSE(allclose(a.images, b.images, 1e-3F));
}

TEST(SyntheticTest, PixelsInUnitRange) {
  const Dataset ds = generate_synthetic(tiny_spec());
  for (std::int64_t i = 0; i < ds.images.numel(); ++i) {
    EXPECT_GE(ds.images[i], 0.0F);
    EXPECT_LE(ds.images[i], 1.0F);
  }
}

TEST(SyntheticTest, LabelsBalancedAndInRange) {
  const Dataset ds = generate_synthetic(tiny_spec());
  std::vector<int> counts(5, 0);
  for (std::int64_t label : ds.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 5);
    ++counts[static_cast<std::size_t>(label)];
  }
  for (int c : counts) EXPECT_EQ(c, 40);  // 200 / 5, round-robin balanced
}

TEST(SyntheticTest, PrefixSliceStaysRoughlyBalanced) {
  // Labels are shuffled, so the train prefix of a split must contain every
  // class in near-equal proportion.
  const Dataset ds = generate_synthetic(tiny_spec());
  const Dataset train = ds.slice(0, 100);
  std::vector<int> counts(5, 0);
  for (std::int64_t label : train.labels) {
    ++counts[static_cast<std::size_t>(label)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 8);
    EXPECT_LT(c, 32);
  }
}

TEST(SyntheticTest, NoiseKnobRaisesPixelVariance) {
  SyntheticSpec clean = tiny_spec();
  clean.noise_std = 0.0F;
  SyntheticSpec noisy = tiny_spec();
  noisy.noise_std = 0.2F;
  const Dataset a = generate_synthetic(clean);
  const Dataset b = generate_synthetic(noisy);
  // Mean absolute pixel difference between the two corpora is large.
  double diff = 0.0;
  for (std::int64_t i = 0; i < a.images.numel(); ++i) {
    diff += std::fabs(a.images[i] - b.images[i]);
  }
  diff /= static_cast<double>(a.images.numel());
  EXPECT_GT(diff, 0.05);
}

TEST(SyntheticTest, OcclusionProducesConstantPatches) {
  SyntheticSpec spec = tiny_spec();
  spec.occlusion_prob = 1.0F;
  spec.occlusion_size = 0.5F;
  spec.noise_std = 0.0F;
  const Dataset ds = generate_synthetic(spec);
  // With occlusion on every image and no noise, each image must contain an
  // 8x8 constant block (0.05 or 0.85) in some channel.
  std::int64_t with_patch = 0;
  for (std::int64_t i = 0; i < ds.size(); ++i) {
    bool found = false;
    for (std::int64_t y = 0; y < 16 && !found; ++y) {
      for (std::int64_t x = 0; x < 16 && !found; ++x) {
        const float v = ds.images.at(i, 0, y, x);
        if (v == 0.05F || v == 0.85F) found = true;
      }
    }
    with_patch += found ? 1 : 0;
  }
  EXPECT_EQ(with_patch, ds.size());
}

TEST(SyntheticTest, CanonicalSpecsMatchPaperTiers) {
  const SyntheticSpec mnist = smnist_spec(100);
  EXPECT_EQ(mnist.channels, 1);
  EXPECT_EQ(mnist.num_classes, 10);
  const SyntheticSpec cifar = scifar_spec(100);
  EXPECT_EQ(cifar.channels, 3);
  EXPECT_EQ(cifar.num_classes, 10);
  const SyntheticSpec imagenet = simagenet_spec(100);
  EXPECT_EQ(imagenet.channels, 3);
  EXPECT_EQ(imagenet.num_classes, 20);
  EXPECT_GT(imagenet.size, cifar.size);
  // Difficulty must increase across tiers.
  EXPECT_LT(mnist.class_similarity, cifar.class_similarity);
  EXPECT_LT(cifar.class_similarity, imagenet.class_similarity);
  EXPECT_LT(mnist.noise_std, imagenet.noise_std);
}

TEST(SyntheticTest, InvalidSpecsRejected) {
  SyntheticSpec s = tiny_spec();
  s.count = 0;
  EXPECT_THROW(generate_synthetic(s), std::invalid_argument);
  s = tiny_spec();
  s.num_classes = 1;
  EXPECT_THROW(generate_synthetic(s), std::invalid_argument);
  s = tiny_spec();
  s.channels = 2;
  EXPECT_THROW(generate_synthetic(s), std::invalid_argument);
  s = tiny_spec();
  s.size = 4;
  EXPECT_THROW(generate_synthetic(s), std::invalid_argument);
}

}  // namespace
}  // namespace pgmr::data
