// Dataset container tests: slicing, gathering, splitting, shuffling.
#include "data/dataset.h"

#include <gtest/gtest.h>

#include <numeric>

namespace pgmr::data {
namespace {

Dataset make_dataset(std::int64_t n) {
  Dataset ds;
  ds.name = "toy";
  ds.num_classes = 3;
  ds.images = Tensor(Shape{n, 1, 2, 2});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      ds.images[i * 4 + j] = static_cast<float>(i);
    }
    ds.labels.push_back(i % 3);
  }
  return ds;
}

TEST(DatasetTest, SizeAndGeometry) {
  const Dataset ds = make_dataset(6);
  EXPECT_EQ(ds.size(), 6);
  EXPECT_EQ(ds.channels(), 1);
  EXPECT_EQ(ds.height(), 2);
  EXPECT_EQ(ds.width(), 2);
}

TEST(DatasetTest, SliceKeepsAlignment) {
  const Dataset ds = make_dataset(6);
  const Dataset s = ds.slice(2, 5);
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.images[0], 2.0F);
  EXPECT_EQ(s.labels[0], 2);
  EXPECT_EQ(s.labels[2], 1);  // sample 4 -> label 4 % 3
}

TEST(DatasetTest, SliceBadRangeThrows) {
  const Dataset ds = make_dataset(4);
  EXPECT_THROW(ds.slice(-1, 2), std::out_of_range);
  EXPECT_THROW(ds.slice(0, 5), std::out_of_range);
  EXPECT_THROW(ds.slice(3, 2), std::out_of_range);
}

TEST(DatasetTest, GatherReordersSamples) {
  const Dataset ds = make_dataset(5);
  const Dataset g = ds.gather({4, 0, 2});
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.images[0], 4.0F);
  EXPECT_EQ(g.images[4], 0.0F);
  EXPECT_EQ(g.labels[0], 1);  // 4 % 3
  EXPECT_EQ(g.labels[1], 0);
}

TEST(DatasetTest, GatherOutOfRangeThrows) {
  const Dataset ds = make_dataset(3);
  EXPECT_THROW(ds.gather({3}), std::out_of_range);
  EXPECT_THROW(ds.gather({-1}), std::out_of_range);
}

TEST(DatasetTest, SampleReturnsSingleton) {
  const Dataset ds = make_dataset(3);
  const Tensor s = ds.sample(2);
  EXPECT_EQ(s.shape(), Shape({1, 1, 2, 2}));
  EXPECT_EQ(s[0], 2.0F);
}

TEST(DatasetTest, SplitPartitionsWithoutOverlap) {
  const Dataset ds = make_dataset(10);
  const DatasetSplits s = split_dataset(ds, 6, 2, 2);
  EXPECT_EQ(s.train.size(), 6);
  EXPECT_EQ(s.val.size(), 2);
  EXPECT_EQ(s.test.size(), 2);
  EXPECT_EQ(s.train.images[0], 0.0F);
  EXPECT_EQ(s.val.images[0], 6.0F);
  EXPECT_EQ(s.test.images[0], 8.0F);
}

TEST(DatasetTest, SplitTooLargeThrows) {
  const Dataset ds = make_dataset(5);
  EXPECT_THROW(split_dataset(ds, 4, 1, 1), std::invalid_argument);
}

TEST(DatasetTest, ShuffledIndicesIsPermutation) {
  Rng rng(3);
  const auto idx = shuffled_indices(20, rng);
  std::vector<std::int64_t> sorted = idx;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::int64_t> expected(20);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(sorted, expected);
}

}  // namespace
}  // namespace pgmr::data
