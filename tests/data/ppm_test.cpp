// PPM/PGM export tests.
#include "data/ppm.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace pgmr::data {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

std::string temp(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(PpmTest, WritesP6HeaderAndPixelsForColor) {
  Tensor img(Shape{1, 3, 1, 2});
  img[0] = 1.0F;  // R of pixel (0,0)
  img[2] = 0.0F;  // G plane
  img[4] = 0.5F;  // B plane
  const std::string path = temp("pgmr_test.ppm");
  write_pnm(img, path);
  const std::string contents = read_all(path);
  std::filesystem::remove(path);
  EXPECT_EQ(contents.substr(0, 2), "P6");
  // Header "P6\n2 1\n255\n" then 6 bytes of pixel data, interleaved RGB.
  const std::size_t header = contents.find("255\n") + 4;
  ASSERT_EQ(contents.size() - header, 6U);
  EXPECT_EQ(static_cast<unsigned char>(contents[header + 0]), 255);
  EXPECT_EQ(static_cast<unsigned char>(contents[header + 1]), 0);
  EXPECT_EQ(static_cast<unsigned char>(contents[header + 2]), 128);
}

TEST(PpmTest, WritesP5ForGrayscale) {
  Tensor img(Shape{1, 1, 2, 2});
  img.fill(0.25F);
  const std::string path = temp("pgmr_test.pgm");
  write_pnm(img, path);
  const std::string contents = read_all(path);
  std::filesystem::remove(path);
  EXPECT_EQ(contents.substr(0, 2), "P5");
  const std::size_t header = contents.find("255\n") + 4;
  EXPECT_EQ(contents.size() - header, 4U);
  EXPECT_EQ(static_cast<unsigned char>(contents[header]), 64);
}

TEST(PpmTest, ClampsOutOfRangeValues) {
  Tensor img(Shape{1, 1, 1, 2}, {-3.0F, 4.0F});
  const std::string path = temp("pgmr_clamp.pgm");
  write_pnm(img, path);
  const std::string contents = read_all(path);
  std::filesystem::remove(path);
  const std::size_t header = contents.find("255\n") + 4;
  EXPECT_EQ(static_cast<unsigned char>(contents[header + 0]), 0);
  EXPECT_EQ(static_cast<unsigned char>(contents[header + 1]), 255);
}

TEST(PpmTest, RejectsUnsupportedShapes) {
  const Tensor two_channel(Shape{1, 2, 2, 2});
  EXPECT_THROW(write_pnm(two_channel, temp("x.ppm")), std::invalid_argument);
  const Tensor batch(Shape{2, 3, 2, 2});
  EXPECT_THROW(write_pnm(batch, temp("x.ppm")), std::invalid_argument);
}

TEST(UpscaleTest, NearestNeighbourReplicates) {
  Tensor img(Shape{1, 1, 2, 2}, {1.0F, 2.0F, 3.0F, 4.0F});
  const Tensor big = upscale_nearest(img, 2);
  EXPECT_EQ(big.shape(), Shape({1, 1, 4, 4}));
  EXPECT_EQ(big.at(0, 0, 0, 0), 1.0F);
  EXPECT_EQ(big.at(0, 0, 1, 1), 1.0F);
  EXPECT_EQ(big.at(0, 0, 0, 2), 2.0F);
  EXPECT_EQ(big.at(0, 0, 3, 3), 4.0F);
  EXPECT_THROW(upscale_nearest(img, 0), std::invalid_argument);
}

}  // namespace
}  // namespace pgmr::data
