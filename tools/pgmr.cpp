// pgmr: command-line front end for designing, evaluating and running
// PolygraphMR systems from text configuration files.
//
//   pgmr design <benchmark> <members> <out.cfg>   greedy-build a system
//   pgmr eval <config.cfg>                        test-split TP/FP report
//   pgmr predict <config.cfg> <sample-index>      classify one test sample
//   pgmr list                                     available benchmarks/preps
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "polygraph/builder.h"
#include "polygraph/config.h"
#include "prep/preprocessor.h"

namespace {

using namespace pgmr;

int cmd_list() {
  std::printf("benchmarks:\n");
  for (const zoo::Benchmark& bm : zoo::all_benchmarks()) {
    std::printf("  %-12s dataset=%s classes=%lld input=%lldx%lldx%lld\n",
                bm.id.c_str(), bm.dataset_id.c_str(),
                static_cast<long long>(bm.input.classes),
                static_cast<long long>(bm.input.channels),
                static_cast<long long>(bm.input.size),
                static_cast<long long>(bm.input.size));
  }
  std::printf("preprocessors:\n ");
  for (const std::string& spec : prep::standard_pool()) {
    std::printf(" %s", spec.c_str());
  }
  std::printf("\n");
  return 0;
}

int cmd_design(const std::string& benchmark_id, int members,
               const std::string& out_path) {
  const zoo::Benchmark& bm = zoo::find_benchmark(benchmark_id);
  std::printf("designing a %d-member system for %s...\n", members,
              benchmark_id.c_str());
  const polygraph::GreedyResult result =
      polygraph::greedy_build(bm, zoo::candidate_pool(bm), members);

  polygraph::SystemConfig config;
  config.benchmark = benchmark_id;
  config.members = result.selected;
  config.thresholds = result.operating_point.thresholds;
  polygraph::save_config(config, out_path);

  std::printf("selected:");
  for (const std::string& spec : result.selected) {
    std::printf(" %s", spec.c_str());
  }
  std::printf("\nthresholds: Thr_Conf=%.2f Thr_Freq=%d "
              "(validation TP %.2f%%, FP %.2f%%)\nwrote %s\n",
              static_cast<double>(config.thresholds.conf),
              config.thresholds.freq, 100.0 * result.operating_point.tp_rate,
              100.0 * result.operating_point.fp_rate, out_path.c_str());
  return 0;
}

int cmd_eval(const std::string& config_path) {
  const polygraph::SystemConfig config = polygraph::load_config(config_path);
  const zoo::Benchmark& bm = zoo::find_benchmark(config.benchmark);
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);
  polygraph::PolygraphSystem system = polygraph::make_system(config);

  nn::Network baseline = zoo::trained_network(bm, "ORG");
  const mr::Outcome base = mr::evaluate_single(
      zoo::probabilities_on(baseline, splits.test), splits.test.labels, 0.0F);
  const mr::Outcome out =
      system.evaluate(splits.test.images, splits.test.labels);
  std::printf("baseline: TP %.2f%%  FP %.2f%%\n", 100.0 * base.tp_rate(),
              100.0 * base.fp_rate());
  std::printf("system:   TP %.2f%%  FP %.2f%%  unreliable %.2f%%\n",
              100.0 * out.tp_rate(), 100.0 * out.fp_rate(),
              100.0 * (1.0 - out.tp_rate() - out.fp_rate()));
  std::printf("FP detected: %.1f%%\n",
              100.0 * (1.0 - out.fp_rate() / base.fp_rate()));
  if (config.staged) {
    const mr::StagedOutcome staged =
        system.evaluate_staged(splits.test.images, splits.test.labels);
    std::printf("mean members activated (RADE): %.2f / %zu\n",
                staged.mean_activated(), config.members.size());
  }
  return 0;
}

int cmd_predict(const std::string& config_path, std::int64_t index) {
  const polygraph::SystemConfig config = polygraph::load_config(config_path);
  const zoo::Benchmark& bm = zoo::find_benchmark(config.benchmark);
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);
  if (index < 0 || index >= splits.test.size()) {
    std::fprintf(stderr, "sample index out of range (0..%lld)\n",
                 static_cast<long long>(splits.test.size() - 1));
    return 1;
  }
  polygraph::PolygraphSystem system = polygraph::make_system(config);
  const polygraph::Verdict v = system.predict(splits.test.sample(index));
  std::printf("sample %lld: predicted %lld (truth %lld) -> %s "
              "(%d votes, %d members activated)\n",
              static_cast<long long>(index), static_cast<long long>(v.label),
              static_cast<long long>(
                  splits.test.labels[static_cast<std::size_t>(index)]),
              v.reliable ? "RELIABLE" : "UNRELIABLE", v.votes, v.activated);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pgmr list\n"
               "  pgmr design <benchmark> <members> <out.cfg>\n"
               "  pgmr eval <config.cfg>\n"
               "  pgmr predict <config.cfg> <sample-index>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
#ifdef PGMR_REPO_CACHE_DIR
  ::setenv("PGMR_CACHE_DIR", PGMR_REPO_CACHE_DIR, 0);
#endif
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "design" && argc == 5) {
      return cmd_design(argv[2], std::atoi(argv[3]), argv[4]);
    }
    if (cmd == "eval" && argc == 3) return cmd_eval(argv[2]);
    if (cmd == "predict" && argc == 4) {
      return cmd_predict(argv[2], std::atoll(argv[3]));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
