// pgmr: command-line front end for designing, evaluating and running
// PolygraphMR systems from text configuration files.
//
//   pgmr design <benchmark> <members> <out.cfg>   greedy-build a system
//   pgmr eval <config.cfg>                        test-split TP/FP report
//   pgmr predict <config.cfg> <sample-index>      classify one test sample
//   pgmr serve-bench <config.cfg> [flags]         serving-runtime load test
//   pgmr workload <out.trace> [flags]             generate a traffic trace
//   pgmr list                                     available benchmarks/preps
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <optional>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

#include "fault/injector.h"
#include "fleet/router.h"
#include "mr/protection.h"
#include "perf/cost_model.h"
#include "polygraph/builder.h"
#include "polygraph/config.h"
#include "prep/preprocessor.h"
#include "runtime/serving_runtime.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace {

using namespace pgmr;

int cmd_list() {
  std::printf("benchmarks:\n");
  for (const zoo::Benchmark& bm : zoo::all_benchmarks()) {
    std::printf("  %-12s dataset=%s classes=%lld input=%lldx%lldx%lld\n",
                bm.id.c_str(), bm.dataset_id.c_str(),
                static_cast<long long>(bm.input.classes),
                static_cast<long long>(bm.input.channels),
                static_cast<long long>(bm.input.size),
                static_cast<long long>(bm.input.size));
  }
  std::printf("preprocessors:\n ");
  for (const std::string& spec : prep::standard_pool()) {
    std::printf(" %s", spec.c_str());
  }
  std::printf("\n");
  return 0;
}

int cmd_design(const std::string& benchmark_id, int members,
               const std::string& out_path) {
  const zoo::Benchmark& bm = zoo::find_benchmark(benchmark_id);
  std::printf("designing a %d-member system for %s...\n", members,
              benchmark_id.c_str());
  const polygraph::GreedyResult result =
      polygraph::greedy_build(bm, zoo::candidate_pool(bm), members);

  polygraph::SystemConfig config;
  config.benchmark = benchmark_id;
  config.members = result.selected;
  config.thresholds = result.operating_point.thresholds;
  polygraph::save_config(config, out_path);

  std::printf("selected:");
  for (const std::string& spec : result.selected) {
    std::printf(" %s", spec.c_str());
  }
  std::printf("\nthresholds: Thr_Conf=%.2f Thr_Freq=%d "
              "(validation TP %.2f%%, FP %.2f%%)\nwrote %s\n",
              static_cast<double>(config.thresholds.conf),
              config.thresholds.freq, 100.0 * result.operating_point.tp_rate,
              100.0 * result.operating_point.fp_rate, out_path.c_str());
  return 0;
}

int cmd_eval(const std::string& config_path) {
  const polygraph::SystemConfig config = polygraph::load_config(config_path);
  const zoo::Benchmark& bm = zoo::find_benchmark(config.benchmark);
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);
  polygraph::PolygraphSystem system = polygraph::make_system(config);

  nn::Network baseline = zoo::trained_network(bm, "ORG");
  const mr::Outcome base = mr::evaluate_single(
      zoo::probabilities_on(baseline, splits.test), splits.test.labels, 0.0F);
  const mr::Outcome out =
      system.evaluate(splits.test.images, splits.test.labels);
  std::printf("baseline: TP %.2f%%  FP %.2f%%\n", 100.0 * base.tp_rate(),
              100.0 * base.fp_rate());
  std::printf("system:   TP %.2f%%  FP %.2f%%  unreliable %.2f%%\n",
              100.0 * out.tp_rate(), 100.0 * out.fp_rate(),
              100.0 * (1.0 - out.tp_rate() - out.fp_rate()));
  std::printf("FP detected: %.1f%%\n",
              100.0 * (1.0 - out.fp_rate() / base.fp_rate()));
  if (config.staged) {
    const mr::StagedOutcome staged =
        system.evaluate_staged(splits.test.images, splits.test.labels);
    std::printf("mean members activated (RADE): %.2f / %zu\n",
                staged.mean_activated(), config.members.size());
  }
  return 0;
}

int cmd_predict(const std::string& config_path, std::int64_t index) {
  const polygraph::SystemConfig config = polygraph::load_config(config_path);
  const zoo::Benchmark& bm = zoo::find_benchmark(config.benchmark);
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);
  if (index < 0 || index >= splits.test.size()) {
    std::fprintf(stderr, "sample index out of range (0..%lld)\n",
                 static_cast<long long>(splits.test.size() - 1));
    return 1;
  }
  polygraph::PolygraphSystem system = polygraph::make_system(config);
  const polygraph::Verdict v = system.predict(splits.test.sample(index));
  std::printf("sample %lld: predicted %lld (truth %lld) -> %s "
              "(%d votes, %d members activated)\n",
              static_cast<long long>(index), static_cast<long long>(v.label),
              static_cast<long long>(
                  splits.test.labels[static_cast<std::size_t>(index)]),
              v.reliable ? "RELIABLE" : "UNRELIABLE", v.votes, v.activated);
  return 0;
}

std::vector<std::int64_t> row_argmax(const Tensor& probs) {
  const std::int64_t n = probs.shape()[0];
  const std::int64_t c = probs.shape()[1];
  std::vector<std::int64_t> out(static_cast<std::size_t>(n), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = probs.data() + i * c;
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

/// --protection auto's per-member sensitivity probe: with ABFT temporarily
/// off (so faults flow through), inject a handful of high-exponent weight
/// flips per member and measure the fraction of probe predictions each
/// flip changes. Weights are restored bit-exactly; the member's protection
/// (and thereby its CRC blessing) is reinstated before returning.
std::vector<double> probe_sensitivities(polygraph::PolygraphSystem& system,
                                        const data::Dataset& probe) {
  constexpr int kFlipsPerMember = 8;
  std::vector<double> sens(system.ensemble().size(), 1.0);
  for (std::size_t m = 0; m < system.ensemble().size(); ++m) {
    mr::Member& mem = system.ensemble().member(m);
    const nn::Protection saved = mem.protection();
    mem.set_protection(nn::Protection::off);
    const std::vector<std::int64_t> base =
        row_argmax(mem.probabilities(probe.images));
    Rng rng(0x9E3779B9ULL + m);
    std::vector<fault::FaultSite> sites = fault::sample_sites(
        mem.net().mutable_network(), kFlipsPerMember, rng);
    double changed = 0.0;
    for (std::size_t i = 0; i < sites.size(); ++i) {
      sites[i].bit = 23 + static_cast<int>(i % 8);  // exponent bits only
      const float orig = fault::inject(mem.net().mutable_network(), sites[i]);
      const std::vector<std::int64_t> pred =
          row_argmax(mem.probabilities(probe.images));
      fault::restore(mem.net().mutable_network(), sites[i], orig);
      std::int64_t diff = 0;
      for (std::size_t j = 0; j < base.size(); ++j) {
        if (pred[j] != base[j]) ++diff;
      }
      changed += static_cast<double>(diff) / static_cast<double>(base.size());
    }
    sens[m] = sites.empty()
                  ? 1.0
                  : changed / static_cast<double>(sites.size());
    mem.set_protection(saved);
  }
  return sens;
}

/// Drives the serving runtime with load drawn from the benchmark's test
/// split — open-loop (flood every request up front) by default, or
/// fixed-concurrency closed-loop with --closed-loop K — and reports
/// throughput, latency and quality. --shards N > 1 serves through a
/// fleet::FleetRouter over N replicas (each built from the same config)
/// instead of a single runtime, reporting merged metrics.
int cmd_serve_bench(const std::string& config_path, int argc, char** argv) {
  runtime::RuntimeOptions opts;
  opts.threads = 1;
  opts.max_batch = 16;
  opts.max_delay = std::chrono::microseconds(2000);
  long long requests = 1000;
  long long deadline_us = 0;  // 0 = no per-request deadline
  long long closed_loop = 0;  // 0 = open loop, K = concurrent clients
  std::size_t shards = 1;     // > 1 = fleet-routed serving
  fleet::Isolation isolation = fleet::Isolation::thread;
  bool replacement = false;
  bool protection_auto = false;
  double sdc_budget = 0.05;
  for (int i = 0; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string arg = argv[i + 1];
    const long long value = std::atoll(arg.c_str());
    if (flag == "--threads") {
      opts.threads = static_cast<std::size_t>(value);
    } else if (flag == "--max-batch") {
      opts.max_batch = static_cast<std::size_t>(value);
    } else if (flag == "--max-delay-us") {
      opts.max_delay = std::chrono::microseconds(value);
    } else if (flag == "--queue-cap") {
      opts.queue_capacity = static_cast<std::size_t>(value);
    } else if (flag == "--requests") {
      requests = value;
    } else if (flag == "--deadline-us") {
      deadline_us = value;
    } else if (flag == "--closed-loop") {
      closed_loop = value;
    } else if (flag == "--shards") {
      shards = static_cast<std::size_t>(value);
    } else if (flag == "--isolation") {
      if (arg == "thread") {
        isolation = fleet::Isolation::thread;
      } else if (arg == "process") {
        isolation = fleet::Isolation::process;
      } else {
        std::fprintf(stderr,
                     "serve-bench: --isolation must be thread|process\n");
        return 2;
      }
    } else if (flag == "--protection") {
      if (arg == "off") {
        opts.protection = nn::Protection::off;
      } else if (arg == "fc" || arg == "final_fc") {
        opts.protection = nn::Protection::final_fc;
      } else if (arg == "full") {
        opts.protection = nn::Protection::full;
      } else if (arg == "auto") {
        protection_auto = true;
      } else {
        std::fprintf(stderr,
                     "serve-bench: --protection must be off|fc|full|auto\n");
        return 2;
      }
    } else if (flag == "--sdc-budget") {
      sdc_budget = std::atof(arg.c_str());
    } else if (flag == "--scrub-interval-ms") {
      opts.scrub_interval = std::chrono::milliseconds(value);
    } else if (flag == "--scrub-max-tensors") {
      opts.scrub_max_tensors = static_cast<std::size_t>(value);
    } else if (flag == "--scrub-max-chunks") {
      opts.scrub_max_chunks = static_cast<std::size_t>(value);
    } else if (flag == "--scrub-max-hold-us") {
      opts.scrub_max_hold = std::chrono::microseconds(value);
    } else if (flag == "--training-threads") {
      opts.replacement.training_threads = static_cast<std::size_t>(value);
    } else if (flag == "--training-nice") {
      opts.replacement.training_nice = static_cast<int>(value);
    } else if (flag == "--replacement") {
      if (arg == "on") {
        replacement = true;
      } else if (arg == "off") {
        replacement = false;
      } else {
        std::fprintf(stderr, "serve-bench: --replacement must be on|off\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "serve-bench: unknown flag %s\n", flag.c_str());
      return 2;
    }
  }
  if (requests <= 0) {
    std::fprintf(stderr, "serve-bench: --requests must be positive\n");
    return 2;
  }
  if (closed_loop < 0) {
    std::fprintf(stderr, "serve-bench: --closed-loop must be >= 0\n");
    return 2;
  }
  if (shards == 0) shards = 1;
  if (replacement && shards > 1) {
    // The replacement factory is wired to one live runtime (and trains on
    // process-wide thread settings); per-shard self-healing is not routed
    // through serve-bench yet.
    std::fprintf(stderr,
                 "serve-bench: --replacement on requires --shards 1\n");
    return 2;
  }

  const polygraph::SystemConfig config = polygraph::load_config(config_path);
  const zoo::Benchmark& bm = zoo::find_benchmark(config.benchmark);
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);
  const std::int64_t pool_n = splits.test.size();
  std::printf("serve-bench: %s (%zu members, shards=%zu, isolation=%s, "
              "threads=%zu, "
              "max_batch=%zu, max_delay=%lldus, requests=%lld, "
              "protection=%s, scrub_interval=%lldms, mode=%s)\n",
              config.benchmark.c_str(), config.members.size(), shards,
              fleet::to_string(isolation),
              opts.threads, opts.max_batch,
              static_cast<long long>(opts.max_delay.count()), requests,
              protection_auto ? "auto" : nn::to_string(opts.protection),
              static_cast<long long>(opts.scrub_interval.count()),
              closed_loop > 0 ? "closed-loop" : "open-loop");

  polygraph::PolygraphSystem system = polygraph::make_system(config);
  if (protection_auto) {
    // Cost-driven plan: probe each member's SDC sensitivity with a few
    // exponent flips on a small slice, then pick the cheapest per-member
    // assignment whose residual SDC mass fits the budget.
    const std::int64_t probe_n = std::min<std::int64_t>(32, splits.val.size());
    const data::Dataset probe = splits.val.slice(0, probe_n);
    const std::vector<double> sens = probe_sensitivities(system, probe);
    const perf::CostModel cost_model;
    const Shape in{1, bm.input.channels, bm.input.size, bm.input.size};
    const std::vector<mr::MemberProtectionInput> inputs =
        mr::protection_inputs(system.ensemble(), in, cost_model, sens);
    const std::vector<mr::ProtectionPlan> frontier =
        mr::protection_frontier(inputs);
    const mr::ProtectionPlan plan =
        mr::select_protection(frontier, sdc_budget);
    opts.protection_per_member = plan.levels;
    std::printf("protection plan (sdc_budget=%.3f, residual=%.4f, "
                "frontier=%zu):\n",
                sdc_budget, plan.residual_sdc, frontier.size());
    for (std::size_t m = 0; m < plan.levels.size(); ++m) {
      std::printf("  member %zu: %-8s (sensitivity %.3f, share %.3f)\n", m,
                  nn::to_string(plan.levels[m]), sens[m],
                  inputs[m].param_share);
    }
  }

  // The replacement factory needs the live ensemble's composition, which
  // only exists once the runtime does — hand it a cell filled in below.
  auto live = std::make_shared<std::atomic<runtime::ServingRuntime*>>(nullptr);
  if (replacement) {
    opts.replacement.enabled = true;
    opts.replacement.factory =
        [&bm, &config, live](std::size_t member, int attempt,
                             std::stop_token cancel)
        -> std::optional<mr::Member> {
      runtime::ServingRuntime* rt = live->load();
      if (rt == nullptr) return std::nullopt;
      const std::vector<std::string> in_use =
          rt->system().ensemble().prep_names();
      const zoo::ReplacementSpec spec =
          zoo::choose_replacement(bm, in_use, in_use[member], attempt);
      return zoo::make_replacement_member(bm, spec, config.bits, cancel);
    };
  }
  // Exactly one of the two serving stacks is live: a single runtime, or a
  // fleet router over `shards` replicas built from the same config (the
  // probed protection plan rides along in the shared RuntimeOptions).
  std::optional<runtime::ServingRuntime> rt;
  std::optional<fleet::FleetRouter> fleet_rt;
  if (shards > 1) {
    fleet::FleetOptions fopts;
    fopts.shards = shards;
    fopts.runtime = opts;
    // process isolation: each shard is a fork/exec'd pgmr-shard-worker
    // found next to this binary (the supervisor's default resolution).
    fopts.isolation = isolation;
    fleet_rt.emplace(
        [&config](std::size_t) { return polygraph::make_system(config); },
        fopts);
  } else {
    rt.emplace(std::move(system), opts);
    live->store(&*rt);
  }

  std::atomic<std::int64_t> tp{0}, fp{0}, unreliable{0}, degraded{0},
      shed{0}, failed{0};
  const auto classify = [&](std::future<polygraph::Verdict>& future,
                            long long r) {
    try {
      const polygraph::Verdict v = future.get();
      const std::int64_t truth =
          splits.test.labels[static_cast<std::size_t>(r % pool_n)];
      if (v.degraded) ++degraded;
      if (!v.reliable) {
        ++unreliable;
      } else if (v.label == truth) {
        ++tp;
      } else {
        ++fp;
      }
    } catch (const runtime::DeadlineExceeded&) {
      ++shed;
    } catch (const std::exception&) {
      ++failed;
    }
  };
  const auto request_deadline = [&] {
    std::optional<std::chrono::steady_clock::time_point> deadline;
    if (deadline_us > 0) {
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::microseconds(deadline_us);
    }
    return deadline;
  };

  // Fleet routing is keyed by request index: stable, uniformly spread.
  const auto submit_one = [&](long long r) {
    Tensor sample = splits.test.sample(r % pool_n);
    return fleet_rt ? fleet_rt->submit(std::move(sample),
                                       static_cast<std::uint64_t>(r),
                                       request_deadline())
                    : rt->submit(std::move(sample), request_deadline());
  };

  const auto t0 = std::chrono::steady_clock::now();
  if (closed_loop > 0) {
    // Fixed concurrency: K clients each keep exactly one request in
    // flight, pulling the next index off a shared counter — the
    // latency-oriented mode (queueing delay reflects K, not the flood).
    std::atomic<long long> next{0};
    std::vector<std::jthread> clients;
    clients.reserve(static_cast<std::size_t>(closed_loop));
    for (long long k = 0; k < closed_loop; ++k) {
      clients.emplace_back([&] {
        for (long long r = next.fetch_add(1); r < requests;
             r = next.fetch_add(1)) {
          try {
            std::future<polygraph::Verdict> future = submit_one(r);
            classify(future, r);
          } catch (const std::exception&) {
            ++failed;  // e.g. a fleet shard refused the hand-off
          }
        }
      });
    }
    clients.clear();  // joins every client
  } else {
    // Open loop: flood every request up front, then drain — the
    // throughput-oriented mode (batcher sees maximum coalescing pressure).
    std::vector<std::future<polygraph::Verdict>> futures;
    futures.reserve(static_cast<std::size_t>(requests));
    for (long long r = 0; r < requests; ++r) {
      futures.push_back(submit_one(r));
    }
    for (long long r = 0; r < requests; ++r) {
      classify(futures[static_cast<std::size_t>(r)], r);
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (rt) rt->shutdown();
  if (fleet_rt) fleet_rt->shutdown();

  std::optional<fleet::FleetSnapshot> fleet_snap;
  if (fleet_rt) fleet_snap = fleet_rt->snapshot();
  const runtime::MetricsSnapshot snap =
      fleet_rt ? fleet_snap->merged : rt->metrics_snapshot();
  std::printf("throughput: %.1f req/s (%lld requests in %.3fs)\n",
              static_cast<double>(requests) / secs, requests, secs);
  std::printf("quality:    TP %lld  FP %lld  unreliable %lld  "
              "degraded %lld (%.2f%%)\n",
              static_cast<long long>(tp), static_cast<long long>(fp),
              static_cast<long long>(unreliable),
              static_cast<long long>(degraded),
              100.0 * static_cast<double>(degraded) /
                  static_cast<double>(requests));
  std::uint64_t member_faults = 0, quarantines = 0, crc_mismatches = 0,
                weight_reloads = 0;
  for (const std::uint64_t f : snap.member_faults) member_faults += f;
  for (const std::uint64_t q : snap.quarantine_events) quarantines += q;
  for (const std::uint64_t c : snap.crc_mismatches) crc_mismatches += c;
  for (const std::uint64_t w : snap.weight_reloads) weight_reloads += w;
  std::size_t quarantined_now = 0;
  if (fleet_rt) {
    if (fleet_rt->isolation() == fleet::Isolation::thread) {
      for (std::size_t s = 0; s < fleet_rt->shards(); ++s) {
        quarantined_now += fleet_rt->shard(s).health().quarantined_count();
      }
    }
    // process isolation: member health lives inside the worker processes;
    // only the merged metrics (quarantine_events above) cross the wire.
  } else {
    quarantined_now = rt->health().quarantined_count();
  }
  std::printf("resilience: shed %lld  failed %lld  member_faults %llu  "
              "quarantines %llu (%zu member(s) quarantined now)\n",
              static_cast<long long>(shed), static_cast<long long>(failed),
              static_cast<unsigned long long>(member_faults),
              static_cast<unsigned long long>(quarantines),
              quarantined_now);
  std::printf("scrubbing:  %llu cycle(s), crc_mismatches %llu, "
              "weight_reloads %llu\n",
              static_cast<unsigned long long>(snap.scrub_cycles),
              static_cast<unsigned long long>(crc_mismatches),
              static_cast<unsigned long long>(weight_reloads));
  std::printf("replacement: %s — started %llu  completed %llu  failed %llu, "
              "quorum %llu/%zu\n",
              replacement ? "on" : "off",
              static_cast<unsigned long long>(snap.replacements_started),
              static_cast<unsigned long long>(snap.replacements_completed),
              static_cast<unsigned long long>(snap.replacements_failed),
              static_cast<unsigned long long>(snap.quorum_size),
              config.members.size());
  std::printf("batching:   %llu batches, mean size %.2f, max %llu\n",
              static_cast<unsigned long long>(snap.batches),
              snap.mean_batch_size(),
              static_cast<unsigned long long>(snap.max_batch_size));
  std::printf("latency:    p50 %llu us  p95 %llu us  p99 %llu us (%s)\n",
              static_cast<unsigned long long>(snap.latency_quantile_us(0.5)),
              static_cast<unsigned long long>(snap.latency_quantile_us(0.95)),
              static_cast<unsigned long long>(snap.latency_quantile_us(0.99)),
              closed_loop > 0 ? "closed-loop" : "open-loop");
  std::printf("scrub hold: p50 %llu us  p99 %llu us\n",
              static_cast<unsigned long long>(
                  snap.scrub_hold_quantile_us(0.5)),
              static_cast<unsigned long long>(
                  snap.scrub_hold_quantile_us(0.99)));
  std::printf("-- metrics snapshot --\n%s",
              fleet_snap ? fleet_snap->to_string().c_str()
                         : snap.to_string().c_str());
  return 0;
}

/// Generates a day-in-production traffic trace (workload/generator.h) and
/// writes it in the replayable pgmr-trace text format. The printed summary
/// plus the seed is everything needed to reproduce or inspect a campaign's
/// input mix; feed the file to `day_in_production --trace <file>`.
int cmd_workload(const std::string& out_path, int argc, char** argv) {
  workload::WorkloadSpec spec;
  for (int i = 0; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string arg = argv[i + 1];
    if (flag == "--seed") {
      spec.seed = std::strtoull(arg.c_str(), nullptr, 10);
    } else if (flag == "--requests") {
      spec.requests = std::atoll(arg.c_str());
    } else if (flag == "--day-seconds") {
      spec.day_seconds = std::atof(arg.c_str());
    } else if (flag == "--diurnal-amplitude") {
      spec.diurnal_amplitude = std::atof(arg.c_str());
    } else if (flag == "--burst-prob") {
      spec.burst_prob = std::atof(arg.c_str());
    } else if (flag == "--burst-len") {
      spec.burst_len = std::atoi(arg.c_str());
    } else if (flag == "--drift-frac") {
      spec.drift_frac = std::atof(arg.c_str());
    } else if (flag == "--ood-frac") {
      spec.ood_frac = std::atof(arg.c_str());
    } else if (flag == "--adversarial-frac") {
      spec.adversarial_frac = std::atof(arg.c_str());
    } else if (flag == "--corpus-size") {
      spec.corpus_size = std::atoll(arg.c_str());
    } else {
      std::fprintf(stderr, "workload: unknown flag %s\n", flag.c_str());
      return 2;
    }
  }
  const workload::Trace trace = workload::generate_trace(spec);
  workload::save_trace(trace, out_path);
  std::printf("seed %llu: %s\nwrote %s\n",
              static_cast<unsigned long long>(trace.seed),
              workload::to_string(workload::summarize(trace)).c_str(),
              out_path.c_str());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pgmr list\n"
               "  pgmr design <benchmark> <members> <out.cfg>\n"
               "  pgmr eval <config.cfg>\n"
               "  pgmr predict <config.cfg> <sample-index>\n"
               "  pgmr serve-bench <config.cfg> [--threads N] [--max-batch B]"
               " [--max-delay-us D] [--queue-cap Q] [--requests R]"
               " [--deadline-us T] [--closed-loop K] [--shards N]"
               " [--isolation thread|process]"
               " [--protection off|fc|full|auto] [--sdc-budget B]"
               " [--scrub-interval-ms S] [--scrub-max-tensors N]"
               " [--scrub-max-chunks N] [--scrub-max-hold-us H]"
               " [--replacement on|off]"
               " [--training-threads N] [--training-nice L]\n"
               "  pgmr workload <out.trace> [--seed S] [--requests R]"
               " [--day-seconds T] [--diurnal-amplitude A] [--burst-prob P]"
               " [--burst-len L] [--drift-frac D] [--ood-frac O]"
               " [--adversarial-frac V] [--corpus-size C]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
#ifdef PGMR_REPO_CACHE_DIR
  ::setenv("PGMR_CACHE_DIR", PGMR_REPO_CACHE_DIR, 0);
#endif
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "design" && argc == 5) {
      return cmd_design(argv[2], std::atoi(argv[3]), argv[4]);
    }
    if (cmd == "eval" && argc == 3) return cmd_eval(argv[2]);
    if (cmd == "predict" && argc == 4) {
      return cmd_predict(argv[2], std::atoll(argv[3]));
    }
    if (cmd == "serve-bench" && argc >= 3) {
      return cmd_serve_bench(argv[2], argc - 3, argv + 3);
    }
    if (cmd == "workload" && argc >= 3) {
      return cmd_workload(argv[2], argc - 3, argv + 3);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
