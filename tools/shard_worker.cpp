// pgmr-shard-worker: one process-isolated fleet shard.
//
// Spawned by proc::ShardSupervisor, never run by hand:
//
//   pgmr-shard-worker --fd 3 --spec <dir>
//
// fd 3 is the supervisor's socketpair end; <dir> a spec directory written
// by proc::write_system_spec. Everything interesting lives in
// proc::run_worker.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "proc/worker.h"

int main(int argc, char** argv) {
  int fd = -1;
  std::string spec_dir;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--fd") == 0 && i + 1 < argc) {
      fd = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--spec") == 0 && i + 1 < argc) {
      spec_dir = argv[++i];
    } else {
      std::fprintf(stderr, "pgmr-shard-worker: unknown argument %s\n", arg);
      return 64;
    }
  }
  if (fd < 0 || spec_dir.empty()) {
    std::fprintf(stderr,
                 "usage: pgmr-shard-worker --fd <socket-fd> --spec <dir>\n"
                 "(spawned by the fleet's ShardSupervisor, not by hand)\n");
    return 64;
  }
  return pgmr::proc::run_worker(fd, spec_dir);
}
