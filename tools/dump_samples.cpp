// Dumps example images from each dataset tier and each Fig 3 hard-input
// characteristic to PPM/PGM files under ./samples/, for visual inspection.
#include <cstdio>
#include <filesystem>

#include "data/ppm.h"
#include "data/synthetic.h"

int main() {
  using namespace pgmr;
  const std::string dir = "samples";
  std::filesystem::create_directories(dir);

  auto dump = [&](const data::SyntheticSpec& spec, const std::string& tag,
                  int count) {
    const data::Dataset ds = data::generate_synthetic(spec);
    for (int i = 0; i < count; ++i) {
      const Tensor big = data::upscale_nearest(ds.sample(i), 8);
      const std::string ext = spec.channels == 3 ? ".ppm" : ".pgm";
      const std::string path = dir + "/" + tag + "_cls" +
                               std::to_string(ds.labels[static_cast<std::size_t>(i)]) +
                               "_" + std::to_string(i) + ext;
      data::write_pnm(big, path);
      std::printf("wrote %s\n", path.c_str());
    }
  };

  dump(data::smnist_spec(16), "smnist", 4);
  dump(data::scifar_spec(16), "scifar", 4);
  dump(data::simagenet_spec(16), "simagenet", 4);

  // Fig 3 characteristics, isolated.
  data::SyntheticSpec occluded = data::scifar_spec(16, 111);
  occluded.occlusion_prob = 1.0F;
  occluded.occlusion_size = 0.4F;
  dump(occluded, "fig3a_occluded", 4);

  data::SyntheticSpec multi = data::scifar_spec(16, 222);
  multi.second_object_prob = 1.0F;
  dump(multi, "fig3b_multiobject", 4);

  data::SyntheticSpec similar = data::scifar_spec(16, 333);
  similar.class_similarity = 1.0F;
  dump(similar, "fig3c_similar", 4);

  return 0;
}
