// Prewarms the zoo cache: trains every network any bench or example needs,
// so subsequent runs are inference-only. Safe to re-run (cached models are
// skipped) and to run concurrently with other consumers (atomic publish).
//
// Order: cheap tiers first so tests that rely on lenet5/convnet unblock
// early, then the 100 ConvNet variants for Figs 5/13, then the heavy
// scifar/simagenet networks.
#include <cstdio>

#include "zoo/zoo.h"

namespace {

void warm(const pgmr::zoo::Benchmark& bm, const std::string& prep, int variant) {
  pgmr::zoo::trained_network(bm, prep, variant);
}

void warm_benchmark(const pgmr::zoo::Benchmark& bm, int mr_variants) {
  warm(bm, "ORG", 0);
  for (const std::string& spec : pgmr::zoo::candidate_pool(bm)) {
    warm(bm, spec, 0);
  }
  for (int v = 1; v < mr_variants; ++v) warm(bm, "ORG", v);
}

}  // namespace

int main() {
  using pgmr::zoo::find_benchmark;
  constexpr int kMrVariants = 6;        // 6_MR needs variants 0..5
  constexpr int kConvnetVariants = 100; // Fig 13's 100_MR_DE

  std::printf("[prewarm] cheap tiers first\n");
  warm_benchmark(find_benchmark("lenet5"), kMrVariants);
  warm_benchmark(find_benchmark("convnet"), kMrVariants);

  std::printf("[prewarm] convnet MR variants (Figs 5, 13)\n");
  for (int v = kMrVariants; v < kConvnetVariants; ++v) {
    warm(find_benchmark("convnet"), "ORG", v);
  }

  std::printf("[prewarm] scifar heavy networks\n");
  warm_benchmark(find_benchmark("resnet20"), kMrVariants);
  warm_benchmark(find_benchmark("densenet40"), kMrVariants);

  std::printf("[prewarm] simagenet networks\n");
  warm_benchmark(find_benchmark("alexnet"), kMrVariants);
  warm_benchmark(find_benchmark("resnet34"), kMrVariants);

  std::printf("[prewarm] done\n");
  return 0;
}
