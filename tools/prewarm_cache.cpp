// Prewarms the zoo cache: trains every network any bench or example needs,
// so subsequent runs are inference-only. Safe to re-run (cached models are
// skipped) and to run concurrently with other consumers (atomic publish).
//
// Progress is mirrored into <cache_dir>/prewarm.log so long unattended
// runs leave a record next to the artifacts they produce (never in the
// repository root).
//
// Order: cheap tiers first so tests that rely on lenet5/convnet unblock
// early, then the 100 ConvNet variants for Figs 5/13, then the heavy
// scifar/simagenet networks.
#include <cstdarg>
#include <cstdio>

#include "zoo/zoo.h"

namespace {

std::FILE* g_log = nullptr;

void note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  if (g_log != nullptr) {
    va_start(args, fmt);
    std::vfprintf(g_log, fmt, args);
    va_end(args);
    std::fflush(g_log);
  }
}

void warm(const pgmr::zoo::Benchmark& bm, const std::string& prep, int variant) {
  note("[prewarm] %s %s v%d\n", bm.id.c_str(), prep.c_str(), variant);
  pgmr::zoo::trained_network(bm, prep, variant);
}

void warm_benchmark(const pgmr::zoo::Benchmark& bm, int mr_variants) {
  warm(bm, "ORG", 0);
  for (const std::string& spec : pgmr::zoo::candidate_pool(bm)) {
    warm(bm, spec, 0);
  }
  for (int v = 1; v < mr_variants; ++v) warm(bm, "ORG", v);
}

}  // namespace

int main() {
  using pgmr::zoo::find_benchmark;
  constexpr int kMrVariants = 6;        // 6_MR needs variants 0..5
  constexpr int kConvnetVariants = 100; // Fig 13's 100_MR_DE

  const std::string log_path = pgmr::zoo::cache_dir() + "/prewarm.log";
  g_log = std::fopen(log_path.c_str(), "a");
  if (g_log == nullptr) {
    std::fprintf(stderr, "[prewarm] warning: cannot open %s\n",
                 log_path.c_str());
  }

  note("[prewarm] cheap tiers first\n");
  warm_benchmark(find_benchmark("lenet5"), kMrVariants);
  warm_benchmark(find_benchmark("convnet"), kMrVariants);

  note("[prewarm] convnet MR variants (Figs 5, 13)\n");
  for (int v = kMrVariants; v < kConvnetVariants; ++v) {
    warm(find_benchmark("convnet"), "ORG", v);
  }

  note("[prewarm] scifar heavy networks\n");
  warm_benchmark(find_benchmark("resnet20"), kMrVariants);
  warm_benchmark(find_benchmark("densenet40"), kMrVariants);

  note("[prewarm] simagenet networks\n");
  warm_benchmark(find_benchmark("alexnet"), kMrVariants);
  warm_benchmark(find_benchmark("resnet34"), kMrVariants);

  note("[prewarm] done\n");
  if (g_log != nullptr) std::fclose(g_log);
  return 0;
}
