// Upgrades every legacy (v1, pre-CRC) zoo archive under the cache dir to
// the current CRC-guarded format, in place, with atomic publish.
//
// The normal read path rejects v1 archives (the zoo self-heals them by
// retraining); this tool exists so an already-trained cache survives the
// format bump without paying hundreds of training runs. Archives already
// at the current version are left untouched. Archives NO reader version
// can parse (foreign magic / unknown version / truncated — e.g. the old
// epoch-timestamp seed files) are garbage-collected: self-heal would only
// ever retrain over them, so keeping them buys nothing.
//
//   migrate_cache [cache-dir]    (default: $PGMR_CACHE_DIR or .pgmr_cache)
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>

#include "nn/network.h"
#include "zoo/zoo.h"

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  using pgmr::BinaryReader;

  const std::string dir = argc > 1 ? argv[1] : pgmr::zoo::cache_dir();
  if (!fs::is_directory(dir)) {
    std::fprintf(stderr, "migrate_cache: no cache dir at %s\n", dir.c_str());
    return 1;
  }

  int migrated = 0, current = 0, deleted = 0, failed = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".net") {
      continue;
    }
    const std::string path = entry.path().string();
    bool header_ok = false;
    try {
      BinaryReader legacy(path, BinaryReader::Compat::allow_legacy);
      header_ok = true;  // some reader version understands this file
      if (legacy.version() == pgmr::kArchiveVersion) {
        ++current;
        continue;
      }
      pgmr::nn::Network net = pgmr::nn::Network::load_from(legacy);
      const std::string tmp =
          path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
      net.save(tmp);
      fs::rename(tmp, path);
      ++migrated;
    } catch (const std::exception& e) {
      if (header_ok) {
        // Known format, rotted payload: the zoo's load-time self-heal can
        // still retrain-and-republish under the same name. Keep it.
        std::fprintf(stderr, "migrate_cache: %s: %s (left for self-heal)\n",
                     path.c_str(), e.what());
        ++failed;
      } else {
        // Not an archive in any version we ever wrote: irrecoverable.
        std::fprintf(stderr, "migrate_cache: %s: %s (deleted irrecoverable)\n",
                     path.c_str(), e.what());
        std::error_code ec;
        fs::remove(entry.path(), ec);
        ++deleted;
      }
    }
  }
  std::printf("migrate_cache: %d migrated, %d already current, %d deleted, "
              "%d failed\n",
              migrated, current, deleted, failed);
  return failed == 0 ? 0 : 1;
}
