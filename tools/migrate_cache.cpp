// Upgrades every legacy (v1, pre-CRC) zoo archive under the cache dir to
// the current CRC-guarded format, in place, with atomic publish.
//
// The normal read path rejects v1 archives (the zoo self-heals them by
// retraining); this tool exists so an already-trained cache survives the
// format bump without paying hundreds of training runs. Archives already
// at the current version are left untouched.
//
//   migrate_cache [cache-dir]    (default: $PGMR_CACHE_DIR or .pgmr_cache)
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "nn/network.h"
#include "zoo/zoo.h"

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  using pgmr::BinaryReader;

  const std::string dir = argc > 1 ? argv[1] : pgmr::zoo::cache_dir();
  if (!fs::is_directory(dir)) {
    std::fprintf(stderr, "migrate_cache: no cache dir at %s\n", dir.c_str());
    return 1;
  }

  int migrated = 0, current = 0, failed = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".net") {
      continue;
    }
    const std::string path = entry.path().string();
    try {
      BinaryReader legacy(path, BinaryReader::Compat::allow_legacy);
      if (legacy.version() == pgmr::kArchiveVersion) {
        ++current;
        continue;
      }
      pgmr::nn::Network net = pgmr::nn::Network::load_from(legacy);
      const std::string tmp =
          path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
      net.save(tmp);
      fs::rename(tmp, path);
      ++migrated;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "migrate_cache: %s: %s (left for self-heal)\n",
                   path.c_str(), e.what());
      ++failed;
    }
  }
  std::printf("migrate_cache: %d migrated, %d already current, %d failed\n",
              migrated, current, failed);
  return failed == 0 ? 0 : 1;
}
