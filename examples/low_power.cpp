// Low-power deployment: how far can precision drop before the system (not
// the individual network!) loses quality — and what that buys in energy.
//
// Demonstrates the RAMR observation (paper Section III-D): an MR system
// tolerates more aggressive quantization than a standalone CNN because the
// decision engine averages out individual members' quantization noise.
#include <cstdio>
#include <cstdlib>

#include "perf/cost_model.h"
#include "polygraph/system.h"
#include "zoo/zoo.h"

namespace {

double plurality_accuracy(pgmr::mr::Ensemble& e,
                          const pgmr::data::Dataset& ds) {
  const pgmr::mr::MemberVotes votes = e.member_votes(ds.images);
  std::int64_t correct = 0;
  for (std::size_t n = 0; n < ds.labels.size(); ++n) {
    const auto d = pgmr::mr::decide(
        pgmr::mr::sample_votes(votes, static_cast<std::int64_t>(n)),
        {0.0F, 1});
    if (d.label == ds.labels[n]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(ds.labels.size());
}

}  // namespace

int main() {
  using namespace pgmr;
#ifdef PGMR_REPO_CACHE_DIR
  ::setenv("PGMR_CACHE_DIR", PGMR_REPO_CACHE_DIR, 0);
#endif

  const zoo::Benchmark& bm = zoo::find_benchmark("convnet");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);
  const std::vector<std::string> members = {"ORG", "AdHist", "FlipX", "FlipY"};
  const perf::CostModel model;
  const Shape input{1, bm.input.channels, bm.input.size, bm.input.size};

  std::printf("%6s | %12s | %12s | %18s\n", "bits", "ORG accuracy",
              "4_PGMR accuracy", "4_PGMR energy (norm)");

  nn::Network base_net = zoo::trained_network(bm, "ORG");
  const double base_energy =
      model.network_cost(base_net.cost(input), 32).energy_j;

  for (int bits : {32, 20, 16, 14, 12, 11, 10}) {
    mr::Ensemble solo = zoo::make_ensemble(bm, {"ORG"}, bits);
    mr::Ensemble system = zoo::make_ensemble(bm, members, bits);
    double energy = 0.0;
    for (const auto& c : system.member_costs(input, model)) {
      energy += c.energy_j;
    }
    std::printf("%6d | %11.2f%% | %11.2f%% | %17.2fx\n", bits,
                100.0 * plurality_accuracy(solo, splits.test),
                100.0 * plurality_accuracy(system, splits.test),
                energy / base_energy);
  }
  std::printf("\nThe 4-member system keeps its accuracy several bits below "
              "the point where the\nstandalone network degrades, so the "
              "quantized ensemble costs far less than 4x.\n");
  return 0;
}
