// Designing a PolygraphMR system for a new workload (paper Section III-G).
//
// Walks the two-step design procedure on the CIFAR-tier ConvNet:
//   1. rank candidate preprocessors by their confidence-delta profiles,
//   2. greedily assemble the member set that minimizes undetected
//      mispredictions at a fixed true-positive floor,
// then reports the resulting system's test-set quality.
#include <cstdio>
#include <cstdlib>

#include "polygraph/builder.h"
#include "polygraph/system.h"

int main() {
  using namespace pgmr;
#ifdef PGMR_REPO_CACHE_DIR
  ::setenv("PGMR_CACHE_DIR", PGMR_REPO_CACHE_DIR, 0);
#endif

  const zoo::Benchmark& bm = zoo::find_benchmark("convnet");
  const std::vector<std::string> pool = zoo::candidate_pool(bm);

  // Step 1: compare preprocessors by how often they hesitate on inputs the
  // baseline gets wrong vs inputs it gets right (Fig 8's delta CDFs).
  std::printf("step 1: preprocessor ranking (delta-profile score)\n");
  const auto profiles = polygraph::rank_preprocessors(bm, pool);
  for (const auto& p : profiles) {
    std::printf("  %-12s score %+.3f  (P(neg|wrong) %.2f, P(neg|correct) "
                "%.2f)\n",
                p.candidate.c_str(), p.score(),
                polygraph::DeltaProfile::negative_fraction(p.wrong_deltas),
                polygraph::DeltaProfile::negative_fraction(p.correct_deltas));
  }

  // Step 2: greedy member selection at the baseline-accuracy TP floor.
  std::printf("\nstep 2: greedy member selection (up to 4 networks)\n");
  const polygraph::GreedyResult result = polygraph::greedy_build(bm, pool, 4);
  for (std::size_t i = 0; i < result.selected.size(); ++i) {
    std::printf("  member %zu: %-12s (validation FP after adding: %.2f%%)\n",
                i, result.selected[i].c_str(),
                100.0 * result.fp_trajectory[i]);
  }
  std::printf("  chosen thresholds: Thr_Conf=%.2f Thr_Freq=%d\n",
              static_cast<double>(result.operating_point.thresholds.conf),
              result.operating_point.thresholds.freq);

  // Deploy the designed system and measure on the held-out test split.
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);
  polygraph::PolygraphSystem system(zoo::make_ensemble(bm, result.selected));
  system.set_thresholds(result.operating_point.thresholds);
  const mr::Outcome out =
      system.evaluate(splits.test.images, splits.test.labels);

  nn::Network baseline = zoo::trained_network(bm, "ORG");
  const mr::Outcome base = mr::evaluate_single(
      zoo::probabilities_on(baseline, splits.test), splits.test.labels, 0.0F);
  std::printf("\ntest split: baseline TP %.2f%% FP %.2f%%  ->  system TP "
              "%.2f%% FP %.2f%%\n",
              100.0 * base.tp_rate(), 100.0 * base.fp_rate(),
              100.0 * out.tp_rate(), 100.0 * out.fp_rate());
  std::printf("%.0f%% of the baseline's undetected mispredictions are now "
              "flagged unreliable\n",
              100.0 * (1.0 - out.fp_rate() / base.fp_rate()));
  return 0;
}
