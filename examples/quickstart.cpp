// Quickstart: build a PolygraphMR system in ~40 lines.
//
//   1. Pick a benchmark (dataset tier + CNN recipe) from the zoo.
//   2. Assemble an ensemble: the baseline CNN plus preprocessed variants
//      (trained on demand, cached under .pgmr_cache/).
//   3. Profile the decision thresholds on the validation split.
//   4. Classify inputs: every prediction comes back with a reliability
//      verdict.
//
// Run from the repository root:  ./build/examples/quickstart
#include <cstdio>
#include <cstdlib>

#include "polygraph/system.h"
#include "zoo/zoo.h"

int main() {
  using namespace pgmr;
#ifdef PGMR_REPO_CACHE_DIR
  ::setenv("PGMR_CACHE_DIR", PGMR_REPO_CACHE_DIR, 0);
#endif

  // 1. The MNIST-tier benchmark: LeNet-5 on the synthetic digit corpus.
  const zoo::Benchmark& bm = zoo::find_benchmark("lenet5");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);

  // 2. A 4-member system: original network + three preprocessed variants
  //    (the paper's Table III configuration for LeNet-5).
  polygraph::PolygraphSystem system(zoo::make_ensemble(
      bm, {"ORG", "ConNorm", "FlipX", "Gamma(2.00)"}));

  // 3. Offline profiling: keep 100 % of the baseline's correct answers,
  //    minimize undetected mispredictions.
  nn::Network baseline = zoo::trained_network(bm, "ORG");
  const double tp_floor = zoo::accuracy(baseline, splits.val);
  const mr::SweepPoint op =
      system.profile(splits.val.images, splits.val.labels, tp_floor);
  std::printf("profiled thresholds: Thr_Conf=%.2f Thr_Freq=%d "
              "(val TP %.1f%%, val FP %.2f%%)\n",
              static_cast<double>(op.thresholds.conf), op.thresholds.freq,
              100.0 * op.tp_rate, 100.0 * op.fp_rate);

  // 4. Classify a few test inputs with reliability verdicts.
  std::printf("\nsample predictions:\n");
  for (std::int64_t i = 0; i < 8; ++i) {
    const polygraph::Verdict v = system.predict(splits.test.sample(i));
    std::printf("  sample %lld: predicted %lld (truth %lld) -> %s "
                "(%d/%zu votes)\n",
                static_cast<long long>(i), static_cast<long long>(v.label),
                static_cast<long long>(splits.test.labels[static_cast<std::size_t>(i)]),
                v.reliable ? "RELIABLE" : "unreliable", v.votes,
                system.ensemble().size());
  }

  // Aggregate quality on the held-out test split.
  const mr::Outcome base = mr::evaluate_single(
      zoo::probabilities_on(baseline, splits.test), splits.test.labels, 0.0F);
  const mr::Outcome pg = system.evaluate(splits.test.images, splits.test.labels);
  std::printf("\nbaseline: TP %.2f%%  FP %.2f%%\n", 100.0 * base.tp_rate(),
              100.0 * base.fp_rate());
  std::printf("4_PGMR:   TP %.2f%%  FP %.2f%%  (%.0f%% of mispredictions "
              "detected)\n",
              100.0 * pg.tp_rate(), 100.0 * pg.fp_rate(),
              100.0 * (1.0 - pg.fp_rate() / base.fp_rate()));
  return 0;
}
