// Safety gate: the paper's motivating deployment — a mission-critical
// perception pipeline (think pedestrian classification) where an
// undetected misprediction is disastrous but an "unreliable" verdict can
// be escalated to a fallback (brake, human, better sensor).
//
// This example runs a RADE-staged PolygraphMR system over a stream of
// CIFAR-tier inputs, routes unreliable verdicts to the fallback path, and
// reports the achieved failure rate and the modeled latency per decision
// against a 100 ms real-time budget (the paper cites the self-driving tail
// latency requirement).
#include <cstdio>
#include <cstdlib>

#include "perf/cost_model.h"
#include "polygraph/system.h"
#include "zoo/zoo.h"

int main() {
  using namespace pgmr;
#ifdef PGMR_REPO_CACHE_DIR
  ::setenv("PGMR_CACHE_DIR", PGMR_REPO_CACHE_DIR, 0);
#endif

  const zoo::Benchmark& bm = zoo::find_benchmark("resnet20");
  const data::DatasetSplits splits = zoo::benchmark_splits(bm);

  // Reduced-precision members (RAMR) + staged activation (RADE).
  constexpr int kBits = 16;
  polygraph::PolygraphSystem system(zoo::make_ensemble(
      bm, {"ORG", "FlipX", "FlipY", "Gamma(1.50)"}, kBits));

  nn::Network baseline = zoo::trained_network(bm, "ORG");
  const double tp_floor = zoo::accuracy(baseline, splits.val);
  system.profile(splits.val.images, splits.val.labels, tp_floor);
  system.enable_staged(splits.val.images, splits.val.labels);

  // Stream the test split through the gate.
  std::int64_t accepted = 0, escalated = 0, silent_failures = 0;
  std::int64_t total_activations = 0;
  const std::int64_t n = splits.test.size();
  for (std::int64_t i = 0; i < n; ++i) {
    const polygraph::Verdict v = system.predict(splits.test.sample(i));
    total_activations += v.activated;
    if (!v.reliable) {
      ++escalated;  // fallback path: brake / human / re-sense
    } else if (v.label == splits.test.labels[static_cast<std::size_t>(i)]) {
      ++accepted;
    } else {
      ++silent_failures;  // the outcome the system exists to minimize
    }
  }

  const mr::Outcome base = mr::evaluate_single(
      zoo::probabilities_on(baseline, splits.test), splits.test.labels, 0.0F);

  std::printf("safety gate over %lld frames (resnet20 tier, %d-bit members, "
              "staged):\n", static_cast<long long>(n), kBits);
  std::printf("  accepted (correct & reliable): %6.2f%%\n",
              100.0 * static_cast<double>(accepted) / static_cast<double>(n));
  std::printf("  escalated to fallback:         %6.2f%%\n",
              100.0 * static_cast<double>(escalated) / static_cast<double>(n));
  std::printf("  silent failures:               %6.2f%%  (baseline alone: "
              "%.2f%%)\n",
              100.0 * static_cast<double>(silent_failures) /
                  static_cast<double>(n),
              100.0 * base.fp_rate());
  std::printf("  mean members activated:        %6.2f / 4\n",
              static_cast<double>(total_activations) /
                  static_cast<double>(n));

  // Latency against the 100 ms budget, from the analytic cost model.
  const perf::CostModel model;
  const Shape input{1, bm.input.channels, bm.input.size, bm.input.size};
  const auto costs =
      system.ensemble().member_costs(input, model);
  const perf::InferenceCost worst = model.system_sequential(costs);
  std::printf("  modeled worst-case latency:    %6.3f ms (budget 100 ms)\n",
              1e3 * worst.latency_s);
  return 0;
}
